"""Average bus-load (utilization) analysis.

Section 3.1 of the paper: "For each message, multiply the frequency of a
message (1/period) with its length (incl. protocol overhead), build the sum
over all messages, and finally divide it by the network bandwidth."  The
result says nothing about deadlines or buffer overflow -- which is exactly
the point the paper makes -- but it is the baseline every OEM uses, so the
library reproduces it faithfully, including the per-ECU breakdown of
Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage


@dataclass(frozen=True)
class MessageLoadShare:
    """Load contribution of one message."""

    name: str
    sender: str
    bits_per_second: float
    utilization: float

    def describe(self) -> str:
        """One-line summary used in load reports."""
        return (f"{self.name} ({self.sender}): "
                f"{self.bits_per_second / 1000:.2f} kbit/s, "
                f"{self.utilization * 100:.2f} %")


@dataclass(frozen=True)
class BusLoadReport:
    """Result of an average-load analysis of one bus."""

    bus_name: str
    bit_rate_bps: float
    total_bits_per_second: float
    utilization: float
    per_message: tuple[MessageLoadShare, ...] = ()

    @property
    def utilization_percent(self) -> float:
        """Utilization in percent of the available bandwidth."""
        return self.utilization * 100.0

    def per_ecu(self) -> dict[str, float]:
        """Traffic injected per sending ECU in bits per second."""
        totals: dict[str, float] = {}
        for share in self.per_message:
            totals[share.sender] = totals.get(share.sender, 0.0) + share.bits_per_second
        return totals

    def exceeds(self, limit_fraction: float) -> bool:
        """Whether the load exceeds an OEM-style limit (e.g. 0.4 or 0.6)."""
        return self.utilization > limit_fraction

    def headroom_messages(self, template: CanMessage, bus: CanBus,
                          limit_fraction: float = 1.0) -> int:
        """How many additional copies of ``template`` fit under ``limit_fraction``.

        This answers the OEM question "can more ECUs (and how many) be
        connected without overloading the bus?" under the naive load model.
        """
        if limit_fraction <= 0:
            return 0
        extra_bits = bus.transmission_time(template) / 1000.0 * bus.bit_rate_bps
        extra_per_second = extra_bits / (template.period / 1000.0)
        budget = limit_fraction * self.bit_rate_bps - self.total_bits_per_second
        if budget <= 0 or extra_per_second <= 0:
            return 0
        return int(budget // extra_per_second)

    def describe(self) -> str:
        """Multi-line summary in the shape of Figure 1."""
        lines = [
            f"Bus {self.bus_name}: {self.bit_rate_bps / 1000:g} kbit/s",
            f"  total traffic : {self.total_bits_per_second / 1000:.1f} kbit/s",
            f"  utilization   : {self.utilization_percent:.1f} %",
        ]
        for ecu, bits in sorted(self.per_ecu().items()):
            lines.append(f"    {ecu}: {bits / 1000:.1f} kbit/s")
        return "\n".join(lines)


def bus_load(kmatrix: KMatrix | Sequence[CanMessage], bus: CanBus,
             include_stuffing: bool | None = None) -> BusLoadReport:
    """Compute the average bus load of a message set on a bus.

    Parameters
    ----------
    kmatrix:
        The communication matrix (or any sequence of messages).
    bus:
        Bus configuration providing the bit rate and stuffing assumption.
    include_stuffing:
        Override the bus's bit-stuffing assumption for the load figure.  The
        classical load model usually ignores worst-case stuffing (average
        payloads rarely stuff maximally), so ``False`` reproduces the plain
        textbook number while ``True`` gives a conservative load.
    """
    messages = list(kmatrix)
    effective_bus = bus
    if include_stuffing is not None:
        effective_bus = bus.with_bit_stuffing(include_stuffing)
    shares = []
    total_bits_per_second = 0.0
    for message in messages:
        tx_time_ms = effective_bus.transmission_time(message)
        bits = tx_time_ms / 1000.0 * effective_bus.bit_rate_bps
        frequency_hz = 1000.0 / message.period
        bits_per_second = bits * frequency_hz
        total_bits_per_second += bits_per_second
        shares.append(MessageLoadShare(
            name=message.name,
            sender=message.sender,
            bits_per_second=bits_per_second,
            utilization=bits_per_second / effective_bus.bit_rate_bps,
        ))
    return BusLoadReport(
        bus_name=bus.name,
        bit_rate_bps=bus.bit_rate_bps,
        total_bits_per_second=total_bits_per_second,
        utilization=total_bits_per_second / bus.bit_rate_bps,
        per_message=tuple(sorted(shares, key=lambda s: s.bits_per_second,
                                 reverse=True)),
    )


def abstract_load_from_rates(traffic_bits_per_second: Mapping[str, float],
                             bandwidth_bps: float,
                             bus_name: str = "bus") -> BusLoadReport:
    """Figure-1 style load analysis from raw per-ECU traffic rates.

    The introductory example of the paper works directly with traffic rates
    (20/50/100/10 kbit/s summing to 180 kbit/s on a 500 kbit/s bus = 36 %);
    this helper reproduces exactly that arithmetic without needing a full
    K-Matrix.
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth_bps must be positive")
    shares = tuple(
        MessageLoadShare(name=ecu, sender=ecu, bits_per_second=rate,
                         utilization=rate / bandwidth_bps)
        for ecu, rate in traffic_bits_per_second.items()
    )
    total = float(sum(traffic_bits_per_second.values()))
    return BusLoadReport(
        bus_name=bus_name,
        bit_rate_bps=bandwidth_bps,
        total_bits_per_second=total,
        utilization=total / bandwidth_bps,
        per_message=shares,
    )

"""Retained naive response-time analysis (executable specification).

This module preserves the straightforward formulation of the CAN busy-period
analysis that :class:`repro.analysis.response_time.CanBusAnalysis` optimises:
priority sets, event models, blocking terms and horizons are re-derived
inside every fixed-point iteration, and convergence uses the classical
``1e-9`` delta.  It exists for two reasons:

* the property-based equivalence tests assert that the cached/warm-started
  kernel returns **bit-identical** results to this path across many synthetic
  K-Matrices (same float summation order, same fixed points);
* the :mod:`benchmarks.perf` timing suite measures the kernel speedup
  against it, which is the seed-vs-kernel trajectory recorded in
  ``BENCH_timing.json``.

Do not optimise this module: its value is being obviously equivalent to the
textbook formulation.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.analysis.response_time import MessageResponseTime
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import ErrorModel, NoErrors
from repro.events.model import EventModel

_MAX_BUSY_PERIOD_FACTOR = 1000.0
_MAX_ITERATIONS = 100_000
_CONVERGENCE_EPS = 1e-9


class ReferenceCanBusAnalysis:
    """Naive per-iteration re-derivation of the response-time analysis.

    Constructor-compatible with
    :class:`~repro.analysis.response_time.CanBusAnalysis`; produces the same
    :class:`~repro.analysis.response_time.MessageResponseTime` results.
    """

    def __init__(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        error_model: ErrorModel | None = None,
        assumed_jitter_fraction: float = 0.0,
        controllers: Mapping[str, ControllerModel] | None = None,
        event_models: Mapping[str, EventModel] | None = None,
    ) -> None:
        self.kmatrix = kmatrix
        self.bus = bus
        self.error_model = error_model if error_model is not None else NoErrors()
        self.assumed_jitter_fraction = assumed_jitter_fraction
        self.controllers = dict(controllers or {})
        self._external_event_models = dict(event_models or {})
        self._transmission_times = {
            m.name: bus.transmission_time(m) for m in kmatrix
        }
        self._best_case_times = {
            m.name: bus.best_case_transmission_time(m) for m in kmatrix
        }
        self._bit_time = bus.bit_time_ms
        self._recovery = bus.error_recovery_time()

    # ------------------------------------------------------------------ #
    # Model accessors (re-derived on every call, on purpose)
    # ------------------------------------------------------------------ #
    def event_model(self, message: CanMessage) -> EventModel:
        if message.name in self._external_event_models:
            return self._external_event_models[message.name]
        return message.event_model(self.assumed_jitter_fraction)

    def jitter(self, message: CanMessage) -> float:
        return self.event_model(message).jitter

    def blocking(self, message: CanMessage) -> float:
        lower = self.kmatrix.lower_priority_than(message)
        bus_blocking = max(
            (self._transmission_times[m.name] for m in lower), default=0.0)
        controller = self.controllers.get(message.sender)
        internal = 0.0
        if controller is not None:
            same_ecu_lower = {
                m.name: self._transmission_times[m.name]
                for m in self.kmatrix.sent_by(message.sender)
                if m.can_id > message.can_id
            }
            internal = controller.internal_blocking(message.name, same_ecu_lower)
        return bus_blocking + internal

    def _error_overhead(self, window: float, message: CanMessage) -> float:
        if isinstance(self.error_model, NoErrors):
            return 0.0
        candidates = [self._transmission_times[message.name]]
        candidates.extend(
            self._transmission_times[m.name]
            for m in self.kmatrix.higher_priority_than(message)
        )
        retransmit = max(candidates)
        return self.error_model.overhead(window, self._recovery, retransmit)

    def _interference(self, window: float, message: CanMessage) -> float:
        total = 0.0
        for other in self.kmatrix.higher_priority_than(message):
            model = self.event_model(other)
            activations = model.eta_plus(window + self._bit_time)
            total += activations * self._transmission_times[other.name]
        return total

    # ------------------------------------------------------------------ #
    # Busy-period machinery
    # ------------------------------------------------------------------ #
    def _busy_period(self, message: CanMessage) -> tuple[float, bool]:
        own_c = self._transmission_times[message.name]
        own_model = self.event_model(message)
        blocking = self.blocking(message)
        horizon = _MAX_BUSY_PERIOD_FACTOR * max(
            [message.period] + [m.period for m in self.kmatrix])
        t = own_c + blocking
        for _ in range(_MAX_ITERATIONS):
            own_instances = max(own_model.eta_plus(t), 1)
            new_t = (blocking
                     + own_instances * own_c
                     + self._interference(t, message)
                     + self._error_overhead(t, message))
            if new_t > horizon:
                return new_t, False
            if abs(new_t - t) < _CONVERGENCE_EPS:
                return new_t, True
            t = new_t
        return t, False

    def _queuing_delay(self, message: CanMessage, instance: int,
                       horizon: float) -> tuple[float, bool]:
        own_c = self._transmission_times[message.name]
        blocking = self.blocking(message)
        w = blocking + instance * own_c
        for _ in range(_MAX_ITERATIONS):
            new_w = (blocking
                     + instance * own_c
                     + self._interference(w, message)
                     + self._error_overhead(w + own_c, message))
            if new_w > horizon:
                return new_w, False
            if abs(new_w - w) < _CONVERGENCE_EPS:
                return new_w, True
            w = new_w
        return w, False

    # ------------------------------------------------------------------ #
    # Public analysis entry points
    # ------------------------------------------------------------------ #
    def response_time(self, message: CanMessage) -> MessageResponseTime:
        own_c = self._transmission_times[message.name]
        own_model = self.event_model(message)
        jitter = own_model.jitter
        blocking = self.blocking(message)
        horizon = _MAX_BUSY_PERIOD_FACTOR * max(
            [message.period] + [m.period for m in self.kmatrix])

        busy, busy_bounded = self._busy_period(message)
        if not busy_bounded:
            return MessageResponseTime(
                name=message.name, can_id=message.can_id,
                transmission_time=own_c, blocking=blocking, jitter=jitter,
                worst_case=math.inf,
                best_case=self._best_case_times[message.name],
                busy_period=busy, instances_analyzed=0, bounded=False)

        instances = max(own_model.eta_plus(busy), 1)
        worst = 0.0
        bounded = True
        delays: list[float] = []
        for q in range(instances):
            w, ok = self._queuing_delay(message, q, horizon)
            if not ok:
                bounded = False
                worst = math.inf
                break
            delays.append(w)
            arrival_offset = own_model.delta_minus(q + 1)
            response = jitter + w + own_c - arrival_offset
            worst = max(worst, response)

        return MessageResponseTime(
            name=message.name,
            can_id=message.can_id,
            transmission_time=own_c,
            blocking=blocking,
            jitter=jitter,
            worst_case=worst,
            best_case=self._best_case_times[message.name],
            busy_period=busy,
            instances_analyzed=instances,
            bounded=bounded,
            queuing_delays=tuple(delays),
        )

    def analyze_all(self) -> dict[str, MessageResponseTime]:
        return {m.name: self.response_time(m) for m in self.kmatrix}

    def utilization(self) -> float:
        return sum(
            self._transmission_times[m.name] / m.period for m in self.kmatrix)


def reference_analyze_all(
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.0,
    controllers: Mapping[str, ControllerModel] | None = None,
    event_models: Mapping[str, EventModel] | None = None,
) -> dict[str, MessageResponseTime]:
    """One-shot naive analysis of every message (testing/benchmark helper)."""
    analysis = ReferenceCanBusAnalysis(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers, event_models=event_models)
    return analysis.analyze_all()

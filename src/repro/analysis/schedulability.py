"""System-level schedulability verdicts and message-loss prediction.

The paper's experiments boil down to two questions per configuration:

* which messages meet their deadlines ("verified that all messages will meet
  their deadlines" in experiment 1);
* which messages can be *lost*, i.e. overwritten in the sender's buffer
  because their worst-case response time exceeds the minimum re-arrival time
  (Sections 2 and 4.2, plotted in Figure 5 as a percentage of the K-Matrix).

This module turns per-message response times into those verdicts and into
the aggregate loss fraction used throughout the benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.response_time import CanBusAnalysis, MessageResponseTime
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import ErrorModel
from repro.events.model import EventModel


@dataclass(frozen=True)
class MessageVerdict:
    """Schedulability verdict for one message."""

    name: str
    can_id: int
    worst_case_response: float
    deadline: float
    slack: float
    meets_deadline: bool
    can_be_lost: bool

    @property
    def normalized_slack(self) -> float:
        """Slack divided by the deadline (robustness indicator, may be < 0)."""
        if self.deadline <= 0:
            return -math.inf
        return self.slack / self.deadline

    def describe(self) -> str:
        """One-line summary used in reports."""
        status = "OK " if self.meets_deadline else "MISS"
        return (f"[{status}] {self.name}: R={self.worst_case_response:.3f} ms, "
                f"D={self.deadline:.3f} ms, slack={self.slack:.3f} ms")


@dataclass(frozen=True)
class SchedulabilityReport:
    """Aggregate schedulability result of one bus configuration."""

    verdicts: tuple[MessageVerdict, ...]
    deadline_policy: str
    utilization: float

    @property
    def all_deadlines_met(self) -> bool:
        """True when no message misses its deadline."""
        return all(v.meets_deadline for v in self.verdicts)

    @property
    def missed(self) -> tuple[MessageVerdict, ...]:
        """Verdicts of messages that miss their deadline."""
        return tuple(v for v in self.verdicts if not v.meets_deadline)

    @property
    def lossy(self) -> tuple[MessageVerdict, ...]:
        """Verdicts of messages that can be lost (overwritten before resend)."""
        return tuple(v for v in self.verdicts if v.can_be_lost)

    @property
    def loss_fraction(self) -> float:
        """Fraction of K-Matrix messages that can miss their deadline (0..1).

        This is the y-axis of Figure 5: "# of messages that miss their
        deadline" as a share of all messages in the K-Matrix.
        """
        if not self.verdicts:
            return 0.0
        return len(self.missed) / len(self.verdicts)

    @property
    def total_slack(self) -> float:
        """Sum of positive slacks (robustness reserve of the configuration)."""
        return sum(max(v.slack, 0.0) for v in self.verdicts)

    @property
    def worst_normalized_slack(self) -> float:
        """Smallest slack/deadline ratio across all messages."""
        if not self.verdicts:
            return math.inf
        return min(v.normalized_slack for v in self.verdicts)

    def verdict_for(self, name: str) -> MessageVerdict:
        """Verdict of one message by name."""
        for verdict in self.verdicts:
            if verdict.name == name:
                return verdict
        raise KeyError(name)

    def describe(self) -> str:
        """Multi-line report: verdicts sorted by slack, tightest first."""
        lines = [
            f"Schedulability ({self.deadline_policy} deadlines), "
            f"utilization {self.utilization * 100:.1f} %: "
            f"{len(self.missed)}/{len(self.verdicts)} messages miss "
            f"({self.loss_fraction * 100:.1f} %)",
        ]
        for verdict in sorted(self.verdicts, key=lambda v: v.slack):
            lines.append("  " + verdict.describe())
        return "\n".join(lines)


def _deadline_for(message: CanMessage, policy: str,
                  analysis_jitter: float) -> float:
    """Resolve the deadline of a message under the chosen policy."""
    return message.effective_deadline(policy=policy, jitter=analysis_jitter)


def analyze_schedulability(
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.0,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
    event_models: Mapping[str, EventModel] | None = None,
    warm_start: Mapping[str, MessageResponseTime] | None = None,
) -> SchedulabilityReport:
    """Full schedulability analysis of one bus configuration.

    Parameters
    ----------
    kmatrix, bus, error_model, assumed_jitter_fraction, controllers,
    event_models:
        Passed through to :class:`~repro.analysis.response_time.CanBusAnalysis`.
    deadline_policy:
        ``"period"`` (implicit deadlines), ``"min-rearrival"`` (the paper's
        strictest worst-case experiment) or ``"explicit"``.
    warm_start:
        Optional fixed-point seeds (previous response times) forwarded to
        :meth:`~repro.analysis.response_time.CanBusAnalysis.analyze_all`;
        must satisfy the lower-bound contract documented there.
    """
    report, _ = schedulability_with_results(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        deadline_policy=deadline_policy, controllers=controllers,
        event_models=event_models, warm_start=warm_start)
    return report


def schedulability_with_results(
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.0,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
    event_models: Mapping[str, EventModel] | None = None,
    warm_start: Mapping[str, MessageResponseTime] | None = None,
) -> tuple[SchedulabilityReport, dict[str, MessageResponseTime]]:
    """Like :func:`analyze_schedulability`, but also returns the raw
    per-message response times so callers can chain warm starts (e.g. the
    optimizer's scenario sweep, or an ascending jitter sweep)."""
    analysis = CanBusAnalysis(
        kmatrix=kmatrix,
        bus=bus,
        error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers,
        event_models=event_models,
    )
    results = analysis.analyze_all(warm_start=warm_start)
    report = report_from_results(kmatrix, analysis, results, deadline_policy)
    return report, results


def report_from_results(
    kmatrix: KMatrix,
    analysis: CanBusAnalysis,
    results: Mapping[str, MessageResponseTime],
    deadline_policy: str = "period",
) -> SchedulabilityReport:
    """Build a :class:`SchedulabilityReport` from already computed response
    times, so callers that have just run ``analyze_all`` (e.g. the
    compositional engine) do not pay for a second full analysis."""
    verdicts = []
    for message in kmatrix:
        result = results[message.name]
        deadline = _deadline_for(message, deadline_policy,
                                 analysis.jitter(message))
        slack = deadline - result.worst_case
        meets = result.bounded and result.worst_case <= deadline + 1e-9
        verdicts.append(MessageVerdict(
            name=message.name,
            can_id=message.can_id,
            worst_case_response=result.worst_case,
            deadline=deadline,
            slack=slack,
            meets_deadline=meets,
            can_be_lost=not meets,
        ))
    return SchedulabilityReport(
        verdicts=tuple(verdicts),
        deadline_policy=deadline_policy,
        utilization=analysis.utilization(),
    )


def message_loss_fraction(
    kmatrix: KMatrix,
    bus: CanBus,
    jitter_fraction: float,
    error_model: ErrorModel | None = None,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
) -> float:
    """Fraction of messages that can be lost at a given assumed jitter.

    Convenience wrapper producing one point of a Figure-5 curve: apply the
    assumed jitter fraction to all messages with unknown jitter and return
    the loss fraction under the given error model and deadline policy.
    """
    report = analyze_schedulability(
        kmatrix=kmatrix,
        bus=bus,
        error_model=error_model,
        assumed_jitter_fraction=jitter_fraction,
        deadline_policy=deadline_policy,
        controllers=controllers,
    )
    return report.loss_fraction


def response_time_table(
    report_results: Mapping[str, MessageResponseTime] | Sequence[MessageResponseTime],
) -> list[tuple[str, float, float]]:
    """Flatten response-time results into (name, best, worst) rows."""
    if isinstance(report_results, Mapping):
        values = list(report_results.values())
    else:
        values = list(report_results)
    return [(r.name, r.best_case, r.worst_case) for r in values]

"""Vectorized batch kernel for the response-time fixed points (numpy).

This module is the ``numpy`` backend behind
:class:`~repro.analysis.response_time.CanBusAnalysis` (see
:mod:`repro.analysis.backend` for selection).  It compiles the frozen
per-message interference tables (``_MessageKernel.hp_flat``) into flat numpy
record arrays -- one row of ``(transmission_time, period, jitter,
min_distance)`` per higher-priority message, concatenated bus-wide in
K-Matrix order with per-message offsets -- and then runs the busy-period and
queuing-delay fixed points of *many* messages in lockstep:

* every higher-priority activation count of every candidate window is
  evaluated as one array operation over the row table (instead of one
  Python-level ``ceil`` per message per iteration);
* the ~2 warm-start right-hand-side evaluations per message of a what-if
  query are batched *across* messages, so re-verifying a whole bus costs a
  couple of numpy passes instead of O(n) scalar loops;
* messages converge (or diverge past the horizon) individually and drop out
  of the active set, so the lockstep sweep does the same total row work as
  the scalar loops, at array speed.

Bit-identity
------------
Results must stay bit-identical to the scalar loops (and hence to
:mod:`repro.analysis.reference`, the executable spec).  Two rules make that
hold:

* every element-wise operation replicates the scalar arithmetic IEEE
  operation for IEEE operation on float64 (``np.rint`` is round-half-even,
  exactly like Python's ``round``; the snap tolerances are the same
  expressions; activation counts are integer-valued doubles well below
  2**53, so products and comparisons are exact);
* the per-message interference *sum* runs left-to-right over the row table
  (``sum`` over a list slice accumulates in the same order as the scalar
  ``total += ...`` loop) -- numpy's pairwise ``np.sum`` would regroup the
  additions and change low-order bits, so it is deliberately not used.

The error-model overhead is vectorized for the standard
:class:`~repro.errors.models.SporadicErrorModel` and
:class:`~repro.errors.models.BurstErrorModel` parameter shapes; any other
model is evaluated per message through its own ``overhead`` method on Python
floats, which is the scalar arithmetic by construction.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships in the CI image
    np = None

from repro.errors.models import BurstErrorModel, SporadicErrorModel
from repro.events.model import _EPSILON

HAVE_NUMPY = np is not None

_MAX_ITERATIONS = 100_000


def hp_table(kernel) -> "np.ndarray":
    """The (n, 4) float64 row table of one frozen kernel, built lazily.

    Cached on the kernel (``hp_array``); treated as immutable --
    ``adopt_kernels`` copies before patching rows.
    """
    table = kernel.hp_array
    if table is None:
        flat = kernel.hp_flat
        if flat:
            table = np.array(flat, dtype=np.float64)
        else:
            table = np.empty((0, 4), dtype=np.float64)
        kernel.hp_array = table
    return table


def _segment_indices(starts: "np.ndarray", counts: "np.ndarray",
                     ) -> "np.ndarray":
    """Row indices of the concatenation of ``[start, start+count)`` ranges."""
    keep = counts > 0
    starts = starts[keep]
    counts = counts[keep]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    idx = np.ones(total, dtype=np.int64)
    idx[0] = starts[0]
    if starts.size > 1:
        jumps = np.cumsum(counts[:-1])
        idx[jumps] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(idx)


def _segment_sums(products: "np.ndarray",
                  counts_list: Sequence[int]) -> "np.ndarray":
    """Left-to-right per-segment sums (the scalar accumulation order)."""
    values = products.tolist()
    out = np.empty(len(counts_list), dtype=np.float64)
    pos = 0
    for index, count in enumerate(counts_list):
        if count:
            end = pos + count
            out[index] = sum(values[pos:end])
            pos = end
        else:
            out[index] = 0.0
    return out


def _ceil_div_vec(numerator: "np.ndarray", denominator) -> "np.ndarray":
    """Vector replica of :func:`repro.events.model._ceil_div`."""
    value = numerator / denominator
    nearest = np.rint(value)
    snap = np.abs(value - nearest) <= _EPSILON * np.maximum(
        np.abs(nearest), 1.0)
    return np.where(snap, nearest, np.ceil(value))


def _arrivals_vec(t: "np.ndarray", period: float) -> "np.ndarray":
    """Vector replica of :func:`repro.errors.models._count_arrivals`."""
    value = t / period
    nearest = np.rint(value)
    value = np.where(np.abs(value - nearest) < 1e-9, nearest, value)
    counts = 1.0 + np.floor(value)
    return np.where(t <= 0.0, 0.0, counts)


class BatchSolver:
    """Lockstep fixed-point solver over a set of frozen message kernels.

    All kernels must have a flat interference table (``hp_flat is not
    None``); messages whose *own* event model overrides ``eta_plus`` are
    still accepted -- their own-activation term falls back to the model's
    scalar method per iteration.

    ``error_model`` is ``None`` for an error-free bus; otherwise overheads
    are evaluated vectorized (standard models) or per message (exotic
    models), always reproducing the scalar arithmetic.

    ``cancel`` is an optional :class:`repro.cancel.CancelToken` checked once
    per lockstep iteration; a fired token raises out of the sweep instead of
    running the remaining active set to the iteration cap.
    """

    def __init__(self, kernels: Sequence, bit_time: float, recovery: float,
                 horizon: float, error_model=None, cancel=None) -> None:
        self.kernels = list(kernels)
        self.bit_time = bit_time
        self.recovery = recovery
        self.horizon = horizon
        self.error_model = error_model
        self.cancel = cancel
        # Profiling accumulators: total lockstep rounds and the largest
        # active set seen.  Plain int adds paid identically whether or
        # not a MetricsRegistry is attached upstream; callers publish
        # them once per solve (service layer), never per iteration.
        self.iterations = 0
        self.max_active = 0
        n = len(self.kernels)
        self.own_c = np.array([k.own_c for k in self.kernels],
                              dtype=np.float64)
        self.blocking = np.array([k.blocking for k in self.kernels],
                                 dtype=np.float64)
        self.retransmit = np.array([k.retransmit for k in self.kernels],
                                   dtype=np.float64)
        self.own_flat = np.array(
            [k.own_params is not None for k in self.kernels], dtype=bool)
        params = [k.own_params if k.own_params is not None else
                  (1.0, 0.0, 0.0) for k in self.kernels]
        self.own_period = np.array([p[0] for p in params], dtype=np.float64)
        self.own_jitter = np.array([p[1] for p in params], dtype=np.float64)
        self.own_dmin = np.array([p[2] for p in params], dtype=np.float64)
        tables = [hp_table(k) for k in self.kernels]
        self.counts = np.array([t.shape[0] for t in tables], dtype=np.int64)
        self.starts = np.zeros(n, dtype=np.int64)
        if n > 1:
            np.cumsum(self.counts[:-1], out=self.starts[1:])
        rows = (np.concatenate(tables, axis=0) if tables
                else np.empty((0, 4), dtype=np.float64))
        self.hp_c = np.ascontiguousarray(rows[:, 0])
        self.hp_period = np.ascontiguousarray(rows[:, 1])
        self.hp_jitter = np.ascontiguousarray(rows[:, 2])
        self.hp_dmin = np.ascontiguousarray(rows[:, 3])

    # ------------------------------------------------------------------ #
    # Element-wise replicas of the scalar hot loops
    # ------------------------------------------------------------------ #
    def _products(self, dt, c, period, jitter, dmin, has_d, dmin_safe):
        """Per-row ``activations * c`` (the flat ``_interference_of`` body)."""
        value = (dt + jitter) / period
        nearest = np.rint(value)
        snap = np.abs(value - nearest) <= _EPSILON * np.maximum(nearest, 1.0)
        activations = np.where(snap, nearest, np.ceil(value))
        if has_d is not None:
            capped = _ceil_div_vec(dt, dmin_safe) + 1.0
            activations = np.where(has_d & (capped < activations),
                                   capped, activations)
        products = activations * c
        if (dt <= 0.0).any():
            products = np.where(dt <= 0.0, 0.0, products)
        return products

    def _own_eta(self, w, period, jitter, dmin, flat_mask, kidx):
        """Vector replica of ``_own_eta_plus`` (scalar for exotic models)."""
        activations = _ceil_div_vec(w + jitter, period)
        has_d = dmin > 0.0
        if has_d.any():
            capped = _ceil_div_vec(w, np.where(has_d, dmin, 1.0)) + 1.0
            activations = np.where(has_d & (capped < activations),
                                   capped, activations)
        activations = np.where(w <= 0.0, 0.0, activations)
        if not flat_mask.all():
            kernels = self.kernels
            for index in np.flatnonzero(~flat_mask):
                activations[index] = kernels[int(kidx[index])].model.eta_plus(
                    float(w[index]))
        return activations

    def _error(self, windows, retransmit):
        """Error overhead per item (vectorized standard models)."""
        model = self.error_model
        if model is None:
            return 0.0
        if type(model) is SporadicErrorModel:
            counts = _arrivals_vec(windows, model.min_interarrival)
            return counts * (self.recovery + retransmit)
        if type(model) is BurstErrorModel:
            bursts = _arrivals_vec(windows, model.min_interarrival)
            if model.intra_burst_gap > 0:
                partial = np.minimum(
                    float(model.burst_length),
                    1.0 + np.floor_divide(windows, model.intra_burst_gap))
            else:
                partial = float(model.burst_length)
            counts = (np.maximum(bursts - 1.0, 0.0) * model.burst_length
                      + partial)
            counts = np.where(windows <= 0.0, 0.0, counts)
            return counts * (self.recovery + retransmit)
        recovery = self.recovery
        return np.array(
            [model.overhead(w, recovery, r)
             for w, r in zip(windows.tolist(), retransmit.tolist())],
            dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Lockstep fixed-point driver
    # ------------------------------------------------------------------ #
    def _iterate(self, kidx, w0, base, busy: bool):
        """Iterate all items to their individual fixed points.

        ``kidx`` maps items to kernels (repeatable: the queuing-delay phase
        has one item per analysed instance).  ``base`` is the additive term
        of the queuing-delay right-hand side (``None`` for the busy-period
        phase, whose RHS carries the own-instances term instead).  Returns
        ``(values, bounded)`` in item order, replicating the scalar loops'
        horizon/equality checks and iteration cap exactly.
        """
        n_items = int(kidx.size)
        out_w = np.empty(n_items, dtype=np.float64)
        out_ok = np.zeros(n_items, dtype=bool)
        if n_items == 0:
            return out_w, out_ok
        if n_items > self.max_active:
            self.max_active = n_items
        counts = self.counts[kidx]
        seg = _segment_indices(self.starts[kidx], counts)
        c = self.hp_c[seg]
        period = self.hp_period[seg]
        jitter = self.hp_jitter[seg]
        dmin = self.hp_dmin[seg]
        has_d = dmin > 0.0
        if has_d.any():
            dmin_safe = np.where(has_d, dmin, 1.0)
        else:
            has_d = dmin_safe = None
        own_c = self.own_c[kidx]
        retransmit = self.retransmit[kidx]
        if busy:
            blocking = self.blocking[kidx]
            own_period = self.own_period[kidx]
            own_jitter = self.own_jitter[kidx]
            own_dmin = self.own_dmin[kidx]
            own_flat = self.own_flat[kidx]
        active_kidx = kidx
        position = np.arange(n_items)
        counts_list = counts.tolist()
        w = w0
        horizon = self.horizon
        cancel = self.cancel
        iterations = 0
        while position.size:
            iterations += 1
            if cancel is not None:
                cancel.check()
            dt_rows = np.repeat(w + self.bit_time, counts)
            interference = _segment_sums(
                self._products(dt_rows, c, period, jitter, dmin,
                               has_d, dmin_safe),
                counts_list)
            if busy:
                own_eta = self._own_eta(w, own_period, own_jitter, own_dmin,
                                        own_flat, active_kidx)
                own_instances = np.maximum(own_eta, 1.0)
                error = self._error(w, retransmit)
                new_w = blocking + own_instances * own_c + interference + error
            else:
                error = self._error(w + own_c, retransmit)
                new_w = base + interference + error
            unbounded = new_w > horizon
            converged = ~unbounded & (new_w == w)
            if iterations >= _MAX_ITERATIONS:
                out_w[position] = new_w
                out_ok[position[converged]] = True
                break
            done = unbounded | converged
            if not done.any():
                w = new_w
                continue
            out_w[position[done]] = new_w[done]
            out_ok[position[converged]] = True
            keep = ~done
            if not keep.any():
                break
            row_keep = np.repeat(keep, counts)
            w = new_w[keep]
            position = position[keep]
            counts = counts[keep]
            counts_list = counts.tolist()
            c = c[row_keep]
            period = period[row_keep]
            jitter = jitter[row_keep]
            dmin = dmin[row_keep]
            if has_d is not None:
                has_d = has_d[row_keep]
                dmin_safe = dmin_safe[row_keep]
            own_c = own_c[keep]
            retransmit = retransmit[keep]
            active_kidx = active_kidx[keep]
            if busy:
                blocking = blocking[keep]
                own_period = own_period[keep]
                own_jitter = own_jitter[keep]
                own_dmin = own_dmin[keep]
                own_flat = own_flat[keep]
            else:
                base = base[keep]
        self.iterations += iterations
        return out_w, out_ok

    # ------------------------------------------------------------------ #
    # Phases
    # ------------------------------------------------------------------ #
    def busy_periods(self, seeds: Sequence[Optional[float]] | None,
                     ) -> tuple["np.ndarray", "np.ndarray"]:
        """Busy periods of all kernels, warm-started where seeded."""
        t0 = self.own_c + self.blocking
        if seeds is not None:
            seed = np.array([-math.inf if s is None else s for s in seeds],
                            dtype=np.float64)
            t0 = np.where(seed > t0, seed, t0)
        kidx = np.arange(len(self.kernels), dtype=np.int64)
        return self._iterate(kidx, t0, None, busy=True)

    def own_instances(self, busy: "np.ndarray") -> "np.ndarray":
        """Instances inside each (bounded) busy period, ``max(eta, 1)``."""
        kidx = np.arange(len(self.kernels), dtype=np.int64)
        eta = self._own_eta(busy, self.own_period, self.own_jitter,
                            self.own_dmin, self.own_flat, kidx)
        return np.maximum(eta, 1.0)

    def queuing_delays(self, kidx, instance,
                       seeds: Sequence[Optional[float]] | None,
                       ) -> tuple["np.ndarray", "np.ndarray"]:
        """Queuing delays for ``(kernel, instance)`` items, warm-seeded."""
        kidx = np.asarray(kidx, dtype=np.int64)
        instance = np.asarray(instance, dtype=np.float64)
        base = self.blocking[kidx] + instance * self.own_c[kidx]
        w0 = base
        if seeds is not None:
            seed = np.array([-math.inf if s is None else s for s in seeds],
                            dtype=np.float64)
            w0 = np.where(seed > base, seed, base)
        return self._iterate(kidx, w0, base, busy=False)

"""Bus-level timing analysis.

This package contains the analyses the paper contrasts:

* :mod:`repro.analysis.load` -- the "popular but not sufficient" average bus
  load / utilization model (Section 3.1, Figure 1);
* :mod:`repro.analysis.response_time` -- worst-case response-time analysis of
  CAN messages with queuing jitter, blocking, bit stuffing and bus errors
  (Section 3.2), following Tindell/Burns and the Davis et al. revision;
* :mod:`repro.analysis.schedulability` -- system-level verdicts: which
  messages meet their deadlines, which can be lost, and by how much
  (Sections 4 and 4.2);
* :mod:`repro.analysis.reference` -- the retained naive formulation of the
  response-time analysis, the executable specification the optimised kernel
  is checked (bit-identically) and benchmarked against.
"""

from repro.analysis.load import BusLoadReport, MessageLoadShare, bus_load
from repro.analysis.reference import (
    ReferenceCanBusAnalysis,
    reference_analyze_all,
)
from repro.analysis.response_time import (
    CanBusAnalysis,
    MessageResponseTime,
    best_case_response_time,
    worst_case_response_time,
)
from repro.analysis.schedulability import (
    MessageVerdict,
    SchedulabilityReport,
    analyze_schedulability,
    message_loss_fraction,
    report_from_results,
    schedulability_with_results,
)

__all__ = [
    "bus_load",
    "BusLoadReport",
    "MessageLoadShare",
    "CanBusAnalysis",
    "MessageResponseTime",
    "ReferenceCanBusAnalysis",
    "reference_analyze_all",
    "worst_case_response_time",
    "best_case_response_time",
    "analyze_schedulability",
    "schedulability_with_results",
    "report_from_results",
    "SchedulabilityReport",
    "MessageVerdict",
    "message_loss_fraction",
]

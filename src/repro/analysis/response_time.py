"""Worst-case response-time analysis for CAN messages.

The analysis follows the classical fixed-priority non-preemptive busy-period
formulation introduced by Tindell & Burns for CAN and corrected by Davis,
Burns, Bril & Lukkien (2007):

* a message can be blocked by at most one lower-priority frame that already
  won arbitration (plus controller-internal blocking, Section 3.2 of the
  paper);
* all higher-priority frames queued before the message starts transmission
  delay it; their arrivals are bounded by their standard event models
  (periodic with jitter / burst), which generalises the classical
  ``ceil((w + J_k + tau_bit) / T_k)`` term;
* bus errors add recovery and retransmission overhead according to the
  configured :class:`~repro.errors.ErrorModel`;
* when the busy period extends beyond the message's period, all instances
  inside the busy period must be analysed (the Davis et al. revision).

All times are in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import ErrorModel, NoErrors
from repro.events.model import EventModel


#: Safety valve for the fixed-point iterations: if a busy period grows beyond
#: this many times the largest period involved, the configuration is treated
#: as unschedulable (response time unbounded for practical purposes).
_MAX_BUSY_PERIOD_FACTOR = 1000.0
_MAX_ITERATIONS = 100_000
_CONVERGENCE_EPS = 1e-9


@dataclass(frozen=True)
class MessageResponseTime:
    """Analysis result for one message."""

    name: str
    can_id: int
    transmission_time: float
    blocking: float
    jitter: float
    worst_case: float
    best_case: float
    busy_period: float
    instances_analyzed: int
    bounded: bool = True

    @property
    def response_interval(self) -> float:
        """Width of the response-time interval (drives output jitter)."""
        if not self.bounded:
            return math.inf
        return self.worst_case - self.best_case

    def describe(self) -> str:
        """One-line summary used in reports."""
        wc = f"{self.worst_case:.3f}" if self.bounded else "unbounded"
        return (f"{self.name}: R=[{self.best_case:.3f}, {wc}] ms "
                f"(C={self.transmission_time:.3f}, B={self.blocking:.3f}, "
                f"J={self.jitter:.3f})")


def best_case_response_time(message: CanMessage, bus: CanBus) -> float:
    """Best-case response time: the frame wins arbitration immediately.

    No interference, no blocking, no stuff bits beyond the fixed format.
    """
    return bus.best_case_transmission_time(message)


class CanBusAnalysis:
    """Response-time analysis of all messages sharing one CAN bus.

    Parameters
    ----------
    kmatrix:
        Communication matrix of the bus.
    bus:
        Bus configuration (bit rate, stuffing assumption).
    error_model:
        Bus-error model adding recovery/retransmission overhead; defaults to
        an error-free bus.
    assumed_jitter_fraction:
        Jitter assumed for messages whose jitter the K-Matrix does not
        specify, expressed as a fraction of the message period (the knob the
        paper sweeps from 0 % to 60 %).
    controllers:
        Optional per-ECU controller models adding internal blocking.
    event_models:
        Optional externally supplied activation models (used by the
        compositional engine to inject gateway output models); by default
        each message's own K-Matrix event model is used.
    """

    def __init__(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        error_model: ErrorModel | None = None,
        assumed_jitter_fraction: float = 0.0,
        controllers: Mapping[str, ControllerModel] | None = None,
        event_models: Mapping[str, EventModel] | None = None,
    ) -> None:
        self.kmatrix = kmatrix
        self.bus = bus
        self.error_model = error_model if error_model is not None else NoErrors()
        self.assumed_jitter_fraction = assumed_jitter_fraction
        self.controllers = dict(controllers or {})
        self._external_event_models = dict(event_models or {})
        self._transmission_times = {
            m.name: bus.transmission_time(m) for m in kmatrix
        }
        self._best_case_times = {
            m.name: bus.best_case_transmission_time(m) for m in kmatrix
        }
        self._bit_time = bus.bit_time_ms
        self._recovery = bus.error_recovery_time()

    # ------------------------------------------------------------------ #
    # Model accessors
    # ------------------------------------------------------------------ #
    def transmission_time(self, message: CanMessage) -> float:
        """Worst-case transmission time of ``message`` on the analysed bus."""
        return self._transmission_times[message.name]

    def event_model(self, message: CanMessage) -> EventModel:
        """Activation model of ``message`` (external override or K-Matrix)."""
        if message.name in self._external_event_models:
            return self._external_event_models[message.name]
        return message.event_model(self.assumed_jitter_fraction)

    def jitter(self, message: CanMessage) -> float:
        """Queuing jitter of ``message`` used by the analysis."""
        return self.event_model(message).jitter

    def blocking(self, message: CanMessage) -> float:
        """Worst-case blocking: one lower-priority frame plus controller term."""
        lower = self.kmatrix.lower_priority_than(message)
        bus_blocking = max(
            (self._transmission_times[m.name] for m in lower), default=0.0)
        controller = self.controllers.get(message.sender)
        internal = 0.0
        if controller is not None:
            same_ecu_lower = {
                m.name: self._transmission_times[m.name]
                for m in self.kmatrix.sent_by(message.sender)
                if m.can_id > message.can_id
            }
            internal = controller.internal_blocking(message.name, same_ecu_lower)
        return bus_blocking + internal

    def _error_overhead(self, window: float, message: CanMessage) -> float:
        """Error recovery + retransmission overhead in a window."""
        if isinstance(self.error_model, NoErrors):
            return 0.0
        # The corrupted frame that must be retransmitted can be any frame that
        # delays the message under analysis: itself or a higher-priority one.
        candidates = [self._transmission_times[message.name]]
        candidates.extend(
            self._transmission_times[m.name]
            for m in self.kmatrix.higher_priority_than(message)
        )
        retransmit = max(candidates)
        return self.error_model.overhead(window, self._recovery, retransmit)

    def _interference(self, window: float, message: CanMessage) -> float:
        """Higher-priority interference in a queuing window of length ``window``."""
        total = 0.0
        for other in self.kmatrix.higher_priority_than(message):
            model = self.event_model(other)
            activations = model.eta_plus(window + self._bit_time)
            total += activations * self._transmission_times[other.name]
        return total

    # ------------------------------------------------------------------ #
    # Busy-period machinery
    # ------------------------------------------------------------------ #
    def _busy_period(self, message: CanMessage) -> tuple[float, bool]:
        """Length of the priority-level busy period (includes own instances)."""
        own_c = self._transmission_times[message.name]
        own_model = self.event_model(message)
        blocking = self.blocking(message)
        horizon = _MAX_BUSY_PERIOD_FACTOR * max(
            [message.period] + [m.period for m in self.kmatrix])
        t = own_c + blocking
        for _ in range(_MAX_ITERATIONS):
            own_instances = max(own_model.eta_plus(t), 1)
            new_t = (blocking
                     + own_instances * own_c
                     + self._interference(t, message)
                     + self._error_overhead(t, message))
            if new_t > horizon:
                return new_t, False
            if abs(new_t - t) < _CONVERGENCE_EPS:
                return new_t, True
            t = new_t
        return t, False

    def _queuing_delay(self, message: CanMessage, instance: int,
                       horizon: float) -> tuple[float, bool]:
        """Fixed point for the queuing delay of the given instance (0-based)."""
        own_c = self._transmission_times[message.name]
        blocking = self.blocking(message)
        w = blocking + instance * own_c
        for _ in range(_MAX_ITERATIONS):
            new_w = (blocking
                     + instance * own_c
                     + self._interference(w, message)
                     + self._error_overhead(w + own_c, message))
            if new_w > horizon:
                return new_w, False
            if abs(new_w - w) < _CONVERGENCE_EPS:
                return new_w, True
            w = new_w
        return w, False

    # ------------------------------------------------------------------ #
    # Public analysis entry points
    # ------------------------------------------------------------------ #
    def response_time(self, message: CanMessage) -> MessageResponseTime:
        """Worst-case (and best-case) response time of one message."""
        own_c = self._transmission_times[message.name]
        own_model = self.event_model(message)
        jitter = own_model.jitter
        blocking = self.blocking(message)
        horizon = _MAX_BUSY_PERIOD_FACTOR * max(
            [message.period] + [m.period for m in self.kmatrix])

        busy, busy_bounded = self._busy_period(message)
        if not busy_bounded:
            return MessageResponseTime(
                name=message.name, can_id=message.can_id,
                transmission_time=own_c, blocking=blocking, jitter=jitter,
                worst_case=math.inf,
                best_case=self._best_case_times[message.name],
                busy_period=busy, instances_analyzed=0, bounded=False)

        instances = max(own_model.eta_plus(busy), 1)
        worst = 0.0
        bounded = True
        for q in range(instances):
            w, ok = self._queuing_delay(message, q, horizon)
            if not ok:
                bounded = False
                worst = math.inf
                break
            # The (q+1)-th instance arrives no earlier than delta_minus(q+1)
            # after the critical-instant arrival, which itself was delayed by
            # the full jitter.
            arrival_offset = own_model.delta_minus(q + 1)
            response = jitter + w + own_c - arrival_offset
            worst = max(worst, response)

        return MessageResponseTime(
            name=message.name,
            can_id=message.can_id,
            transmission_time=own_c,
            blocking=blocking,
            jitter=jitter,
            worst_case=worst,
            best_case=self._best_case_times[message.name],
            busy_period=busy,
            instances_analyzed=instances,
            bounded=bounded,
        )

    def analyze_all(self) -> dict[str, MessageResponseTime]:
        """Response times of every message in the K-Matrix, keyed by name."""
        return {m.name: self.response_time(m) for m in self.kmatrix}

    def utilization(self) -> float:
        """Worst-case bus utilization implied by the analysed message set."""
        return sum(
            self._transmission_times[m.name] / m.period for m in self.kmatrix)


def worst_case_response_time(
    message: CanMessage,
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.0,
    controllers: Mapping[str, ControllerModel] | None = None,
) -> MessageResponseTime:
    """Convenience wrapper analysing a single message.

    Builds a :class:`CanBusAnalysis` for the full K-Matrix (interference
    needs all higher-priority messages) and returns the result for
    ``message`` only.
    """
    analysis = CanBusAnalysis(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers)
    return analysis.response_time(message)

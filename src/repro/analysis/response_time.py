"""Worst-case response-time analysis for CAN messages.

The analysis follows the classical fixed-priority non-preemptive busy-period
formulation introduced by Tindell & Burns for CAN and corrected by Davis,
Burns, Bril & Lukkien (2007):

* a message can be blocked by at most one lower-priority frame that already
  won arbitration (plus controller-internal blocking, Section 3.2 of the
  paper);
* all higher-priority frames queued before the message starts transmission
  delay it; their arrivals are bounded by their standard event models
  (periodic with jitter / burst), which generalises the classical
  ``ceil((w + J_k + tau_bit) / T_k)`` term;
* bus errors add recovery and retransmission overhead according to the
  configured :class:`~repro.errors.ErrorModel`;
* when the busy period extends beyond the message's period, all instances
  inside the busy period must be analysed (the Davis et al. revision).

All times are in milliseconds.

Analysis kernel
---------------
:class:`CanBusAnalysis` is the hot primitive of the whole library: the jitter
sweeps of Figure 4/5, the GA of Section 4.3 and the compositional engine all
reduce to many ``analyze_all`` calls.  The class therefore precomputes, once
per instance, a per-message *interference table*: the flat sequence of
``(transmission_time, period, jitter, min_distance)`` tuples of all
higher-priority messages (in K-Matrix order, so float summation order -- and
hence every result bit -- matches the naive formulation retained in
:mod:`repro.analysis.reference`).  The busy-period and queuing-delay fixed
points then run as tight arithmetic loops over those tables instead of
re-deriving priority sets, event models, blocking terms and horizons on every
iteration.  Blocking, the error-retransmission bound and the divergence
horizon are likewise computed once per message.

Because the right-hand side of each fixed point depends on the iterate only
through *integer* activation counts (the ``eta_plus`` values and the error
count), successive iterates are sums of the same quantities and the iteration
is run to exact float equality (``new_w == w``) instead of a ``1e-9`` delta:
once the activation counts stop changing the iterate reproduces itself
bit-for-bit, which both terminates earlier and makes results independent of
the convergence epsilon.

Warm starts
-----------
``analyze_all(warm_start=...)`` and ``response_time(message, warm_start=...)``
seed each fixed point from a previous :class:`MessageResponseTime` (its
``busy_period`` and per-instance ``queuing_delays``).  The contract is:

    A seed is only valid when it is a **known lower bound** of the new least
    fixed point -- i.e. when it is the converged solution of an analysis
    whose right-hand side is pointwise less than or equal to the current one
    (same priorities and transmission times; jitters no larger; periods
    equal; minimum distances no smaller; error model no harsher).

Under that contract the warm-started iteration converges to *exactly* the
same least fixed point as a cold start (monotone iteration from any point
below the least fixed point cannot cross it), so warm-started sweeps remain
bit-identical to cold ones while skipping most iterations.  Sweeping the
assumed jitter fraction upwards, repeating a bus analysis inside the global
engine with non-decreased jitters, or hardening the error model along a
sweep all satisfy the contract.  Seeds that might overshoot (e.g. results of
a *different* priority assignment) must not be passed: the iteration could
land on a larger fixed point and silently lose exactness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analysis import vector as _vector
from repro.analysis.backend import resolve_backend
from repro.cancel import CancelToken
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.errors.models import ErrorModel, NoErrors
from repro.events.model import EventModel, _ceil_div
from repro.events.model import _EPSILON as _SNAP_EPS


#: Safety valve for the fixed-point iterations: if a busy period grows beyond
#: this many times the largest period involved, the configuration is treated
#: as unschedulable (response time unbounded for practical purposes).
_MAX_BUSY_PERIOD_FACTOR = 1000.0
_MAX_ITERATIONS = 100_000

#: Base implementation of the arrival curve; event models that do not
#: override it can be evaluated from their flat parameter tuple.
_BASE_ETA_PLUS = EventModel.eta_plus


@dataclass(frozen=True)
class MessageResponseTime:
    """Analysis result for one message.

    ``queuing_delays`` records the converged queuing-delay fixed point of
    every instance analysed inside the busy period; it is what warm-started
    re-analyses (see the module docstring) use as seeds.
    """

    name: str
    can_id: int
    transmission_time: float
    blocking: float
    jitter: float
    worst_case: float
    best_case: float
    busy_period: float
    instances_analyzed: int
    bounded: bool = True
    queuing_delays: tuple[float, ...] = ()

    @property
    def response_interval(self) -> float:
        """Width of the response-time interval (drives output jitter)."""
        if not self.bounded:
            return math.inf
        return self.worst_case - self.best_case

    def describe(self) -> str:
        """One-line summary used in reports."""
        wc = f"{self.worst_case:.3f}" if self.bounded else "unbounded"
        return (f"{self.name}: R=[{self.best_case:.3f}, {wc}] ms "
                f"(C={self.transmission_time:.3f}, B={self.blocking:.3f}, "
                f"J={self.jitter:.3f})")


def best_case_response_time(message: CanMessage, bus: CanBus) -> float:
    """Best-case response time: the frame wins arbitration immediately.

    No interference, no blocking, no stuff bits beyond the fixed format.
    """
    return bus.best_case_transmission_time(message)


class _MessageKernel:
    """Frozen per-message interference table (see the module docstring).

    ``hp_flat`` holds one ``(transmission_time, period, jitter, min_distance)``
    tuple per higher-priority message, in K-Matrix order.  When any involved
    event model overrides ``eta_plus`` the kernel falls back to ``hp_models``
    (``(transmission_time, model)`` pairs, same order) so exotic models keep
    their semantics.
    """

    __slots__ = ("own_c", "best_c", "model", "own_params", "blocking",
                 "retransmit", "hp_flat", "hp_models", "hp_names", "jitter",
                 "hp_array")

    def __init__(self) -> None:
        self.hp_flat: Optional[list[tuple[float, float, float, float]]] = None
        self.hp_models: list[tuple[float, EventModel]] = []
        self.hp_names: list[str] = []
        # Lazily materialised (n, 4) float64 view of ``hp_flat`` used by the
        # numpy batch kernel; treated as immutable once built.
        self.hp_array = None


class CanBusAnalysis:
    """Response-time analysis of all messages sharing one CAN bus.

    Parameters
    ----------
    kmatrix:
        Communication matrix of the bus.
    bus:
        Bus configuration (bit rate, stuffing assumption).
    error_model:
        Bus-error model adding recovery/retransmission overhead; defaults to
        an error-free bus.
    assumed_jitter_fraction:
        Jitter assumed for messages whose jitter the K-Matrix does not
        specify, expressed as a fraction of the message period (the knob the
        paper sweeps from 0 % to 60 %).
    controllers:
        Optional per-ECU controller models adding internal blocking.
    event_models:
        Optional externally supplied activation models (used by the
        compositional engine to inject gateway output models); by default
        each message's own K-Matrix event model is used.
    backend:
        Execution backend for the fixed-point loops (``"auto"``/``None``,
        ``"numpy"`` or ``"scalar"``; see :mod:`repro.analysis.backend`).
        Both backends return bit-identical results; ``"numpy"`` silently
        degrades to ``"scalar"`` when numpy is not importable.
    """

    def __init__(
        self,
        kmatrix: KMatrix,
        bus: CanBus,
        error_model: ErrorModel | None = None,
        assumed_jitter_fraction: float = 0.0,
        controllers: Mapping[str, ControllerModel] | None = None,
        event_models: Mapping[str, EventModel] | None = None,
        backend: str | None = None,
    ) -> None:
        self.kmatrix = kmatrix
        self.bus = bus
        self.backend = resolve_backend(backend)
        self.error_model = error_model if error_model is not None else NoErrors()
        self.assumed_jitter_fraction = assumed_jitter_fraction
        self.controllers = dict(controllers or {})
        self._external_event_models = dict(event_models or {})
        self._transmission_times = {
            m.name: bus.transmission_time(m) for m in kmatrix
        }
        self._best_case_times = {
            m.name: bus.best_case_transmission_time(m) for m in kmatrix
        }
        self._bit_time = bus.bit_time_ms
        self._recovery = bus.error_recovery_time()
        self._no_errors = isinstance(self.error_model, NoErrors)
        # Event models are frozen once: every fixed-point iteration reads
        # them, so they must not be rebuilt per call.
        self._models = {m.name: self._resolve_event_model(m) for m in kmatrix}
        # One divergence horizon for the whole bus (the per-message horizon
        # of the naive formulation always evaluates to this global value).
        self._horizon = _MAX_BUSY_PERIOD_FACTOR * max(
            (m.period for m in kmatrix), default=1.0)
        # Profiling accumulators (monotonic plain ints, mirroring
        # BatchSolver's): total fixed-point iterations across both
        # backends and the largest lockstep active set.  Always-on; the
        # service layer reads deltas and publishes them to its metrics
        # registry once per solve.
        self.profile_iterations = 0
        self.profile_max_active = 0
        # Per-message interference tables, built lazily so single-message
        # queries do not pay the full O(n^2) table construction.
        self._kernels: dict[str, _MessageKernel] = {}
        # Blocking terms are O(n) each and queried both by the what-if
        # planner (before any kernel exists) and by kernel construction.
        self._blocking: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Model accessors
    # ------------------------------------------------------------------ #
    def _resolve_event_model(self, message: CanMessage) -> EventModel:
        if message.name in self._external_event_models:
            return self._external_event_models[message.name]
        return message.event_model(self.assumed_jitter_fraction)

    def transmission_time(self, message: CanMessage) -> float:
        """Worst-case transmission time of ``message`` on the analysed bus."""
        return self._transmission_times[message.name]

    def event_model(self, message: CanMessage) -> EventModel:
        """Activation model of ``message`` (external override or K-Matrix)."""
        model = self._models.get(message.name)
        if model is None:
            model = self._resolve_event_model(message)
        return model

    def jitter(self, message: CanMessage) -> float:
        """Queuing jitter of ``message`` used by the analysis."""
        return self.event_model(message).jitter

    def blocking(self, message: CanMessage) -> float:
        """Worst-case blocking: one lower-priority frame plus controller term."""
        value = self._blocking.get(message.name)
        if value is None:
            value = self._compute_blocking(message)
            self._blocking[message.name] = value
        return value

    def _compute_blocking(self, message: CanMessage) -> float:
        lower = self.kmatrix.lower_priority_than(message)
        bus_blocking = max(
            (self._transmission_times[m.name] for m in lower), default=0.0)
        controller = self.controllers.get(message.sender)
        internal = 0.0
        if controller is not None:
            same_ecu_lower = {
                m.name: self._transmission_times[m.name]
                for m in self.kmatrix.sent_by(message.sender)
                if m.can_id > message.can_id
            }
            internal = controller.internal_blocking(message.name, same_ecu_lower)
        return bus_blocking + internal

    # ------------------------------------------------------------------ #
    # Kernel construction
    # ------------------------------------------------------------------ #
    def _kernel(self, message: CanMessage) -> _MessageKernel:
        kernel = self._kernels.get(message.name)
        if kernel is None:
            kernel = self._build_kernel(message)
            self._kernels[message.name] = kernel
        return kernel

    def _build_kernel(self, message: CanMessage) -> _MessageKernel:
        kernel = _MessageKernel()
        own_c = self._transmission_times[message.name]
        kernel.own_c = own_c
        kernel.best_c = self._best_case_times[message.name]
        model = self.event_model(message)
        kernel.model = model
        kernel.jitter = model.jitter
        kernel.blocking = self.blocking(message)
        kernel.own_params = (
            (model.period, model.jitter, model.min_distance)
            if type(model).eta_plus is _BASE_ETA_PLUS else None)

        hp_models: list[tuple[float, EventModel]] = []
        hp_names: list[str] = []
        all_standard = True
        retransmit = own_c
        own_id = message.can_id
        for other in self.kmatrix:
            if other.can_id >= own_id:
                continue
            c = self._transmission_times[other.name]
            other_model = self._models[other.name]
            hp_models.append((c, other_model))
            hp_names.append(other.name)
            if type(other_model).eta_plus is not _BASE_ETA_PLUS:
                all_standard = False
            if c > retransmit:
                retransmit = c
        kernel.hp_models = hp_models
        kernel.hp_names = hp_names
        kernel.retransmit = retransmit
        if all_standard:
            kernel.hp_flat = [
                (c, m.period, m.jitter, m.min_distance) for c, m in hp_models]
        else:
            # A custom eta_plus somewhere: evaluate every model generically so
            # summation order (and therefore every float bit) is preserved.
            kernel.hp_flat = None
        return kernel

    def adopt_kernels(
        self,
        basis: "CanBusAnalysis",
        changed_models: Mapping[str, EventModel],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        """Seed this analysis's interference tables from ``basis``.

        Precondition (the caller must guarantee it -- the what-if session's
        planner does): ``basis`` analyses the *same* K-Matrix list order,
        identifiers, transmission times, senders, controllers and bus as
        this analysis, and the two configurations differ **only** in the
        event models of the messages named in ``changed_models`` (and, at
        most, the bus-error model, which the tables do not capture).  Under
        that precondition blocking, retransmission bounds and interference
        membership are identical, so a basis kernel either carries over
        verbatim (no changed model at or above the message) or needs only
        its changed ``hp_flat``/model entries patched -- O(|hp|) pointer
        work per message instead of a full table rebuild.

        ``names`` restricts adoption to the messages about to be analysed.
        Models with a custom ``eta_plus`` anywhere in the changed set fall
        back to the normal lazy build (exactness over speed).
        """
        if any(type(m).eta_plus is not _BASE_ETA_PLUS
               for m in changed_models.values()):
            return
        changed = set(changed_models)
        wanted = set(names) if names is not None else None
        for message in self.kmatrix:
            name = message.name
            if name in self._kernels:
                continue
            if wanted is not None and name not in wanted:
                continue
            old = basis._kernel(message)
            if old.hp_flat is None:
                continue
            own_changed = name in changed
            if len(changed) <= 4:
                # C-speed scans beat a Python enumerate for small deltas.
                positions = []
                for changed_name in changed:
                    try:
                        positions.append(old.hp_names.index(changed_name))
                    except ValueError:
                        pass
                positions.sort()
            else:
                positions = [index for index, hp_name
                             in enumerate(old.hp_names) if hp_name in changed]
            if not own_changed and not positions:
                self._kernels[name] = old
                continue
            kernel = _MessageKernel()
            kernel.own_c = old.own_c
            kernel.best_c = old.best_c
            kernel.blocking = old.blocking
            kernel.retransmit = old.retransmit
            kernel.hp_names = old.hp_names
            if positions:
                hp_flat = old.hp_flat.copy()
                hp_models = old.hp_models.copy()
                for index in positions:
                    c = hp_flat[index][0]
                    model = changed_models[old.hp_names[index]]
                    hp_flat[index] = (c, model.period, model.jitter,
                                      model.min_distance)
                    hp_models[index] = (c, model)
                kernel.hp_flat = hp_flat
                kernel.hp_models = hp_models
                if old.hp_array is not None:
                    # Patch the numpy row table alongside the tuple list so
                    # the batch kernel keeps skipping the table rebuild too.
                    hp_array = old.hp_array.copy()
                    for index in positions:
                        hp_array[index] = hp_flat[index]
                    kernel.hp_array = hp_array
            else:
                kernel.hp_flat = old.hp_flat
                kernel.hp_models = old.hp_models
                kernel.hp_array = old.hp_array
            if own_changed:
                model = changed_models[name]
                kernel.model = model
                kernel.jitter = model.jitter
                kernel.own_params = (model.period, model.jitter,
                                     model.min_distance)
            else:
                kernel.model = old.model
                kernel.jitter = old.jitter
                kernel.own_params = old.own_params
            self._kernels[name] = kernel

    # ------------------------------------------------------------------ #
    # Hot arithmetic loops
    # ------------------------------------------------------------------ #
    def _interference_of(self, kernel: _MessageKernel, window: float) -> float:
        """Higher-priority interference in a queuing window of ``window`` ms.

        The flat path inlines :func:`repro.events.model._ceil_div` (same
        arithmetic, bit for bit) to keep the per-iteration cost at a few
        float operations per higher-priority message.
        """
        dt = window + self._bit_time
        total = 0.0
        if kernel.hp_flat is not None:
            if dt <= 0:
                return 0.0
            ceil = math.ceil
            for c, period, jitter, min_distance in kernel.hp_flat:
                value = (dt + jitter) / period
                nearest = round(value)
                if abs(value - nearest) <= _SNAP_EPS * (
                        nearest if nearest > 1.0 else 1.0):
                    activations = nearest
                else:
                    activations = ceil(value)
                if min_distance > 0.0:
                    capped = _ceil_div(dt, min_distance) + 1
                    if capped < activations:
                        activations = capped
                total += activations * c
            return total
        for c, model in kernel.hp_models:
            total += model.eta_plus(dt) * c
        return total

    def _own_eta_plus(self, kernel: _MessageKernel, dt: float) -> int:
        params = kernel.own_params
        if params is None:
            return kernel.model.eta_plus(dt)
        if dt <= 0:
            return 0
        period, jitter, min_distance = params
        activations = _ceil_div(dt + jitter, period)
        if min_distance > 0.0:
            capped = _ceil_div(dt, min_distance) + 1
            if capped < activations:
                activations = capped
        return activations

    def _error_overhead_of(self, kernel: _MessageKernel, window: float) -> float:
        """Error recovery + retransmission overhead in a window."""
        if self._no_errors:
            return 0.0
        return self.error_model.overhead(
            window, self._recovery, kernel.retransmit)

    # ------------------------------------------------------------------ #
    # Busy-period machinery
    # ------------------------------------------------------------------ #
    def _busy_period(self, kernel: _MessageKernel,
                     seed: float | None = None,
                     cancel: CancelToken | None = None) -> tuple[float, bool]:
        """Length of the priority-level busy period (includes own instances).

        ``seed`` warm-starts the fixed point; it must respect the lower-bound
        contract of the module docstring.  ``cancel`` is checked once per
        iteration (see :mod:`repro.cancel`).
        """
        own_c = kernel.own_c
        blocking = kernel.blocking
        horizon = self._horizon
        t = own_c + blocking
        if seed is not None and seed > t:
            t = seed
        for iteration in range(_MAX_ITERATIONS):
            if cancel is not None:
                cancel.check()
            own_instances = self._own_eta_plus(kernel, t)
            if own_instances < 1:
                own_instances = 1
            new_t = (blocking
                     + own_instances * own_c
                     + self._interference_of(kernel, t)
                     + self._error_overhead_of(kernel, t))
            if new_t > horizon:
                self.profile_iterations += iteration + 1
                return new_t, False
            if new_t == t:
                self.profile_iterations += iteration + 1
                return new_t, True
            t = new_t
        self.profile_iterations += _MAX_ITERATIONS
        return t, False

    def _queuing_delay(self, kernel: _MessageKernel, instance: int,
                       seed: float | None = None,
                       cancel: CancelToken | None = None) -> tuple[float, bool]:
        """Fixed point for the queuing delay of the given instance (0-based)."""
        own_c = kernel.own_c
        blocking = kernel.blocking
        horizon = self._horizon
        base = blocking + instance * own_c
        w = base
        if seed is not None and seed > w:
            w = seed
        for iteration in range(_MAX_ITERATIONS):
            if cancel is not None:
                cancel.check()
            new_w = (base
                     + self._interference_of(kernel, w)
                     + self._error_overhead_of(kernel, w + own_c))
            if new_w > horizon:
                self.profile_iterations += iteration + 1
                return new_w, False
            if new_w == w:
                self.profile_iterations += iteration + 1
                return new_w, True
            w = new_w
        self.profile_iterations += _MAX_ITERATIONS
        return w, False

    # ------------------------------------------------------------------ #
    # Public analysis entry points
    # ------------------------------------------------------------------ #
    def response_time(
        self,
        message: CanMessage,
        warm_start: MessageResponseTime | None = None,
        cancel: CancelToken | None = None,
    ) -> MessageResponseTime:
        """Worst-case (and best-case) response time of one message.

        ``warm_start`` seeds the busy-period and per-instance queuing-delay
        fixed points from a previous result; see the module docstring for the
        monotonicity contract that keeps the seeded analysis exact.
        ``cancel`` (see :mod:`repro.cancel`) is checked between fixed-point
        iterations; a fired token raises instead of running to the cap.
        """
        kernel = self._kernel(message)
        own_c = kernel.own_c
        jitter = kernel.jitter
        blocking = kernel.blocking

        busy_seed = None
        delay_seeds: Sequence[float] = ()
        if warm_start is not None and warm_start.bounded:
            busy_seed = warm_start.busy_period
            delay_seeds = warm_start.queuing_delays

        busy, busy_bounded = self._busy_period(
            kernel, seed=busy_seed, cancel=cancel)
        if not busy_bounded:
            return MessageResponseTime(
                name=message.name, can_id=message.can_id,
                transmission_time=own_c, blocking=blocking, jitter=jitter,
                worst_case=math.inf,
                best_case=kernel.best_c,
                busy_period=busy, instances_analyzed=0, bounded=False)

        instances = max(self._own_eta_plus(kernel, busy), 1)
        worst = 0.0
        bounded = True
        delays: list[float] = []
        own_model = kernel.model
        for q in range(instances):
            seed = delay_seeds[q] if q < len(delay_seeds) else None
            w, ok = self._queuing_delay(kernel, q, seed=seed, cancel=cancel)
            if not ok:
                bounded = False
                worst = math.inf
                break
            delays.append(w)
            # The (q+1)-th instance arrives no earlier than delta_minus(q+1)
            # after the critical-instant arrival, which itself was delayed by
            # the full jitter.
            arrival_offset = own_model.delta_minus(q + 1)
            response = jitter + w + own_c - arrival_offset
            worst = max(worst, response)

        return MessageResponseTime(
            name=message.name,
            can_id=message.can_id,
            transmission_time=own_c,
            blocking=blocking,
            jitter=jitter,
            worst_case=worst,
            best_case=kernel.best_c,
            busy_period=busy,
            instances_analyzed=instances,
            bounded=bounded,
            queuing_delays=tuple(delays),
        )

    def response_times_batch(
        self,
        items: Sequence[tuple[CanMessage, MessageResponseTime | None]],
        cancel: CancelToken | None = None,
    ) -> dict[str, MessageResponseTime]:
        """Response times of many ``(message, warm_start)`` pairs at once.

        Under the ``numpy`` backend all messages with a flat interference
        table are solved in lockstep by :class:`repro.analysis.vector.
        BatchSolver`: one busy-period pass over all messages, then one
        queuing-delay pass over all analysed instances, each evaluating
        every higher-priority activation count as array operations.  Warm
        seeds follow the same lower-bound contract as
        :meth:`response_time` and are applied in the same batch (this is
        what makes a warm what-if re-verification a couple of numpy passes
        instead of O(n) scalar fixed points).  Messages whose kernels have
        no flat table (custom ``eta_plus``) fall back to the scalar loops.

        Results are bit-identical to per-message :meth:`response_time`
        calls; the returned dict preserves ``items`` order.
        """
        if self.backend != "numpy":
            return {
                message.name: self.response_time(
                    message, warm_start=warm, cancel=cancel)
                for message, warm in items
            }
        batch: list[tuple[CanMessage, _MessageKernel,
                          MessageResponseTime | None]] = []
        for message, warm in items:
            kernel = self._kernel(message)
            if kernel.hp_flat is not None:
                batch.append((message, kernel, warm))
        solved: dict[str, MessageResponseTime] = {}
        if batch:
            solver = _vector.BatchSolver(
                [kernel for _, kernel, _ in batch],
                self._bit_time, self._recovery, self._horizon,
                None if self._no_errors else self.error_model,
                cancel=cancel)
            busy_seeds = [
                warm.busy_period if warm is not None and warm.bounded
                else None
                for _, _, warm in batch]
            busy, busy_ok = solver.busy_periods(busy_seeds)
            instance_counts = solver.own_instances(busy)
            item_kernel: list[int] = []
            item_instance: list[float] = []
            item_seeds: list[float | None] = []
            counts: list[int] = []
            busy_ok_list = busy_ok.tolist()
            for index, (message, kernel, warm) in enumerate(batch):
                if not busy_ok_list[index]:
                    counts.append(0)
                    continue
                instances = int(instance_counts[index])
                counts.append(instances)
                delay_seeds: Sequence[float] = ()
                if warm is not None and warm.bounded:
                    delay_seeds = warm.queuing_delays
                for q in range(instances):
                    item_kernel.append(index)
                    item_instance.append(float(q))
                    item_seeds.append(
                        delay_seeds[q] if q < len(delay_seeds) else None)
            delays_w, delays_ok = solver.queuing_delays(
                item_kernel, item_instance, item_seeds)
            self.profile_iterations += solver.iterations
            if solver.max_active > self.profile_max_active:
                self.profile_max_active = solver.max_active
            busy_list = busy.tolist()
            w_list = delays_w.tolist()
            ok_list = delays_ok.tolist()
            position = 0
            for index, (message, kernel, warm) in enumerate(batch):
                own_c = kernel.own_c
                jitter = kernel.jitter
                blocking = kernel.blocking
                if not busy_ok_list[index]:
                    solved[message.name] = MessageResponseTime(
                        name=message.name, can_id=message.can_id,
                        transmission_time=own_c, blocking=blocking,
                        jitter=jitter, worst_case=math.inf,
                        best_case=kernel.best_c,
                        busy_period=busy_list[index],
                        instances_analyzed=0, bounded=False)
                    continue
                instances = counts[index]
                worst = 0.0
                bounded = True
                delays: list[float] = []
                own_model = kernel.model
                for q in range(instances):
                    if not ok_list[position + q]:
                        bounded = False
                        worst = math.inf
                        break
                    w = w_list[position + q]
                    delays.append(w)
                    arrival_offset = own_model.delta_minus(q + 1)
                    response = jitter + w + own_c - arrival_offset
                    worst = max(worst, response)
                position += instances
                solved[message.name] = MessageResponseTime(
                    name=message.name,
                    can_id=message.can_id,
                    transmission_time=own_c,
                    blocking=blocking,
                    jitter=jitter,
                    worst_case=worst,
                    best_case=kernel.best_c,
                    busy_period=busy_list[index],
                    instances_analyzed=instances,
                    bounded=bounded,
                    queuing_delays=tuple(delays),
                )
        results: dict[str, MessageResponseTime] = {}
        for message, warm in items:
            result = solved.get(message.name)
            if result is None:
                result = self.response_time(
                    message, warm_start=warm, cancel=cancel)
            results[message.name] = result
        return results

    def analyze_all(
        self,
        warm_start: Mapping[str, MessageResponseTime] | None = None,
        cancel: CancelToken | None = None,
    ) -> dict[str, MessageResponseTime]:
        """Response times of every message in the K-Matrix, keyed by name.

        ``warm_start`` maps message names to previous results used as
        fixed-point seeds (missing names are analysed cold); the seeds must
        satisfy the lower-bound contract described in the module docstring.
        Under the ``numpy`` backend the whole bus is solved in one
        vectorized batch (:meth:`response_times_batch`).
        """
        if self.backend == "numpy":
            if warm_start is None:
                return self.response_times_batch(
                    [(m, None) for m in self.kmatrix], cancel=cancel)
            return self.response_times_batch(
                [(m, warm_start.get(m.name)) for m in self.kmatrix],
                cancel=cancel)
        if warm_start is None:
            return {m.name: self.response_time(m, cancel=cancel)
                    for m in self.kmatrix}
        return {
            m.name: self.response_time(
                m, warm_start=warm_start.get(m.name), cancel=cancel)
            for m in self.kmatrix
        }

    def utilization(self) -> float:
        """Worst-case bus utilization implied by the analysed message set."""
        return sum(
            self._transmission_times[m.name] / m.period for m in self.kmatrix)


def worst_case_response_time(
    message: CanMessage,
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.0,
    controllers: Mapping[str, ControllerModel] | None = None,
) -> MessageResponseTime:
    """Convenience wrapper analysing a single message.

    Builds a :class:`CanBusAnalysis` for the full K-Matrix (interference
    needs all higher-priority messages) and returns the result for
    ``message`` only.
    """
    analysis = CanBusAnalysis(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers)
    return analysis.response_time(message)

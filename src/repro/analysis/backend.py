"""Analysis-backend selection (scalar inner loops vs the numpy batch kernel).

The fixed-point analysis has two interchangeable, **bit-identical** execution
backends:

``scalar``
    The pure-Python arithmetic loops of
    :class:`~repro.analysis.response_time.CanBusAnalysis` (the PR 2 kernel).
    Always available.
``numpy``
    The vectorized batch kernel of :mod:`repro.analysis.vector`: per-message
    interference tables are compiled into flat numpy record arrays and the
    busy-period / queuing-delay fixed points of *all* messages iterate in
    lockstep, evaluating every higher-priority activation count of every
    candidate window as array operations.  Summation order and every
    rounding decision replicate the scalar loops operation for operation,
    so results stay bit-identical to :mod:`repro.analysis.reference`.

``auto`` (the default) resolves to ``numpy`` when numpy is importable and
falls back to ``scalar`` otherwise -- environments without numpy lose speed,
never correctness.  The resolved default can be pinned per process with the
``REPRO_ANALYSIS_BACKEND`` environment variable, and per analysis object via
the ``backend=`` constructor argument threaded through
:class:`~repro.service.session.AnalysisSession`,
:class:`~repro.core.engine.CompositionalAnalysis` and the optimizer's
``analysis_backend`` seam.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised implicitly by every import
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy ships in the CI image
    HAVE_NUMPY = False

#: Environment variable pinning the process-wide default backend.
BACKEND_ENV = "REPRO_ANALYSIS_BACKEND"

#: Names accepted by :func:`resolve_backend`.
BACKENDS = ("auto", "numpy", "scalar")


def available_backends() -> tuple[str, ...]:
    """Backends that can actually execute in this interpreter."""
    return ("numpy", "scalar") if HAVE_NUMPY else ("scalar",)


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to an executable backend name.

    ``None`` and ``"auto"`` consult :data:`BACKEND_ENV` and then prefer
    ``numpy`` when available.  An explicit ``"numpy"`` request degrades to
    ``"scalar"`` when numpy is absent (automatic fallback -- both backends
    return bit-identical results, so the substitution is invisible apart
    from speed).  Unknown names raise ``ValueError``.
    """
    if name is None or name == "auto":
        name = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
        if name == "auto":
            return "numpy" if HAVE_NUMPY else "scalar"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown analysis backend {name!r}; expected one of {BACKENDS}")
    if name == "auto":
        return "numpy" if HAVE_NUMPY else "scalar"
    if name == "numpy" and not HAVE_NUMPY:
        return "scalar"
    return name

"""Operations on standard event models.

These are the building blocks of compositional analysis: deriving output
event models from response-time intervals, checking whether a guaranteed
model refines a required one (the supply-chain contract check of Figure 6 in
the paper), and conservatively combining models.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.events.model import (
    EventModel,
    PeriodicEventModel,
    event_model_from_parameters,
)


def add_jitter(model: EventModel, extra_jitter: float,
               min_distance: float | None = None) -> EventModel:
    """Return a model identical to ``model`` with ``extra_jitter`` added.

    This is the fundamental propagation step of compositional analysis: a
    component that delays events by anywhere between its best-case and
    worst-case response time widens the jitter of the event stream by the
    difference of the two.

    Parameters
    ----------
    model:
        Input event model.
    extra_jitter:
        Additional jitter (ms), must be non-negative.
    min_distance:
        Minimum output distance enforced by the component (e.g. the
        transmission time of a frame on the output bus).  When the resulting
        jitter exceeds the period this bounds the burst density.
    """
    if extra_jitter < 0:
        raise ValueError("extra_jitter must be non-negative")
    new_jitter = model.jitter + extra_jitter
    d_min = model.min_distance if min_distance is None else min_distance
    return event_model_from_parameters(
        period=model.period, jitter=new_jitter, min_distance=d_min)


def scale_period(model: EventModel, factor: float) -> EventModel:
    """Return a model whose period is scaled by ``factor`` (rate change)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return event_model_from_parameters(
        period=model.period * factor,
        jitter=model.jitter,
        min_distance=model.min_distance * factor if model.min_distance else 0.0,
    )


def output_event_model(
    input_model: EventModel,
    best_case_response: float,
    worst_case_response: float,
    min_output_distance: float = 0.0,
) -> EventModel:
    """Derive the output event model of a component.

    An event entering a component with the given ``input_model`` leaves it
    between ``best_case_response`` and ``worst_case_response`` later.  The
    output stream keeps the period and gains ``worst - best`` jitter.

    Parameters
    ----------
    input_model:
        Event model at the component input (activation of the task /
        queuing of the message).
    best_case_response, worst_case_response:
        Response-time interval of the component (ms).
    min_output_distance:
        Physical lower bound on the output event distance, e.g. the frame
        transmission time for a bus or the minimum execution time of the
        sending task; keeps burst models realistic.
    """
    if worst_case_response < best_case_response:
        raise ValueError(
            "worst_case_response must be >= best_case_response "
            f"({worst_case_response} < {best_case_response})")
    response_interval = worst_case_response - best_case_response
    return add_jitter(input_model, response_interval,
                      min_distance=min_output_distance)


def is_refinement(guaranteed: EventModel, required: EventModel,
                  horizons: Sequence[float] | None = None) -> bool:
    """Check whether a guaranteed event model satisfies a required one.

    ``guaranteed`` refines ``required`` when every event trace admitted by
    the guarantee is also admitted by the requirement, i.e. the guarantee is
    *at most as bursty* as the requirement allows.  For the parameterised
    standard event models this reduces to parameter comparisons, but we also
    verify the arrival curves on a set of horizons to catch corner cases of
    mixed model classes.

    This is the check behind Figure 6 of the paper: the supplier guarantees a
    send jitter, the OEM requires one; integration is safe when the guarantee
    refines the requirement.
    """
    # Rates must agree: a different period means a genuinely different stream.
    if abs(guaranteed.period - required.period) > 1e-9:
        # A slower guaranteed stream (longer period) still satisfies an upper
        # arrival-curve requirement, but receivers typically also rely on the
        # lower curve (fresh data!), so periods must match exactly.
        return False
    if guaranteed.jitter > required.jitter + 1e-9:
        return False
    horizons = list(horizons) if horizons is not None else _default_horizons(required)
    for dt in horizons:
        if guaranteed.eta_plus(dt) > required.eta_plus(dt):
            return False
        if guaranteed.eta_minus(dt) < required.eta_minus(dt):
            return False
    return True


def _default_horizons(model: EventModel) -> list[float]:
    """Horizons covering sub-period, period and multi-period windows."""
    period = model.period
    base = [period * f for f in (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0,
                                 10.0, 20.0)]
    if model.jitter:
        base.extend([model.jitter * f for f in (0.5, 1.0, 2.0)])
    if model.min_distance:
        base.append(model.min_distance)
    return sorted({round(h, 9) for h in base if h > 0})


def conservative_union(models: Iterable[EventModel]) -> EventModel:
    """Smallest-parameter standard model that upper-bounds all inputs.

    Used when a single requirement must cover several possible behaviours
    (e.g. an OEM requirement that has to admit any of the candidate ECU
    implementations): take the fastest period and the largest jitter.
    """
    models = list(models)
    if not models:
        raise ValueError("conservative_union requires at least one model")
    period = min(m.period for m in models)
    jitter = max(m.jitter for m in models)
    min_distances = [m.min_distance for m in models if m.min_distance > 0]
    min_distance = min(min_distances) if min_distances else 0.0
    return event_model_from_parameters(period=period, jitter=jitter,
                                       min_distance=min_distance)


def combine_and(first: EventModel, second: EventModel) -> EventModel:
    """AND-activation of two event streams (both inputs needed per event).

    The resulting stream runs at the slower of the two rates; its jitter is
    bounded by the sum of the input jitters (an event can only happen once
    its later input has arrived).  This conservative combination is used for
    tasks activated by the arrival of several messages.
    """
    period = max(first.period, second.period)
    jitter = first.jitter + second.jitter
    min_distance = max(first.min_distance, second.min_distance)
    return event_model_from_parameters(period=period, jitter=jitter,
                                       min_distance=min_distance)


def combine_or(first: EventModel, second: EventModel) -> EventModel:
    """OR-activation of two event streams (either input triggers an event).

    The combined rate is the sum of the input rates.  We approximate the
    result with a standard model whose period is the harmonic combination of
    the input periods and whose jitter is the maximum input jitter; the
    minimum distance collapses to zero because events of the two streams can
    coincide.
    """
    rate = 1.0 / first.period + 1.0 / second.period
    period = 1.0 / rate
    jitter = max(first.jitter, second.jitter)
    return event_model_from_parameters(period=period, jitter=jitter,
                                       min_distance=0.0)


def periodic(period: float) -> PeriodicEventModel:
    """Convenience constructor for a strictly periodic model."""
    return PeriodicEventModel(period=period)

"""Generic arrival curves and distance functions.

The standard event models in :mod:`repro.events.model` have closed-form
eta/delta functions.  For analysis results (e.g. the observed activation
pattern at a gateway output, or a trace captured by the simulator) we also
need *empirical* curves sampled from event timestamps.  This module provides
both a thin wrapper type used by generic algorithms and the construction of
empirical curves from traces, so analysis and simulation results can be
compared in the same vocabulary.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class ArrivalCurve:
    """A pair of arrival-curve callables (eta_plus, eta_minus).

    Instances wrap either closed-form event-model curves or empirical curves
    constructed from a trace, giving downstream code a uniform interface.
    """

    eta_plus: Callable[[float], int]
    eta_minus: Callable[[float], int]
    label: str = "arrival-curve"

    def max_events(self, dt: float) -> int:
        """Maximum number of events in any window of length ``dt``."""
        return self.eta_plus(dt)

    def min_events(self, dt: float) -> int:
        """Minimum number of events in any window of length ``dt``."""
        return self.eta_minus(dt)

    def dominates(self, other: "ArrivalCurve", horizons: Sequence[float]) -> bool:
        """True when this curve upper/lower-bounds ``other`` on all horizons."""
        for dt in horizons:
            if self.eta_plus(dt) < other.eta_plus(dt):
                return False
            if self.eta_minus(dt) > other.eta_minus(dt):
                return False
        return True


@dataclass(frozen=True)
class DistanceFunction:
    """A pair of distance-function callables (delta_minus, delta_plus)."""

    delta_minus: Callable[[int], float]
    delta_plus: Callable[[int], float]
    label: str = "distance-function"

    def min_span(self, n: int) -> float:
        """Minimum time spanned by ``n`` consecutive events."""
        return self.delta_minus(n)

    def max_span(self, n: int) -> float:
        """Maximum time spanned by ``n`` consecutive events."""
        return self.delta_plus(n)


class EmpiricalEventTrace:
    """A recorded sequence of event timestamps with curve extraction.

    Used to turn simulator traces into arrival curves that can be checked
    against the analytic curves of the configured event models (the analytic
    eta_plus must dominate the empirical one, and the empirical eta_minus
    must dominate the analytic one).

    ``add`` is O(1) amortised: new timestamps are buffered and merged with a
    single Timsort pass the next time the (sorted) timestamps are read.  The
    previous per-event ``list.insert`` made trace construction quadratic,
    which dominated long simulator runs.
    """

    def __init__(self, timestamps: Iterable[float] | None = None) -> None:
        self._times = sorted(float(t) for t in (timestamps or ()))
        self._pending: list[float] = []

    @property
    def timestamps(self) -> list[float]:
        """Sorted event timestamps (flushes any buffered ``add`` calls)."""
        pending = self._pending
        if pending:
            self._times.extend(pending)
            pending.clear()
            # Timsort is O(n) on the mostly-sorted result of appends.
            self._times.sort()
        return self._times

    @timestamps.setter
    def timestamps(self, values: Iterable[float]) -> None:
        self._times = sorted(float(t) for t in values)
        self._pending = []

    def add(self, timestamp: float) -> None:
        """Record an event occurrence (timestamps may arrive out of order)."""
        self._pending.append(float(timestamp))

    def __len__(self) -> int:
        return len(self._times) + len(self._pending)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EmpiricalEventTrace):
            return NotImplemented
        return self.timestamps == other.timestamps

    def __repr__(self) -> str:
        return f"EmpiricalEventTrace(timestamps={self.timestamps!r})"

    def count_in_window(self, start: float, length: float) -> int:
        """Number of events with ``start <= t < start + length``."""
        lo = bisect_left(self.timestamps, start)
        hi = bisect_left(self.timestamps, start + length)
        return hi - lo

    def empirical_eta_plus(self, dt: float) -> int:
        """Maximum observed number of events in any window of length ``dt``."""
        if dt <= 0 or not self.timestamps:
            return 0
        best = 0
        times = self.timestamps
        hi = 0
        for lo, start in enumerate(times):
            if hi < lo:
                hi = lo
            while hi < len(times) and times[hi] < start + dt:
                hi += 1
            best = max(best, hi - lo)
        return best

    def empirical_eta_minus(self, dt: float) -> int:
        """Minimum observed number of events in any fully covered window.

        A single sliding-window pass symmetric to :meth:`empirical_eta_plus`:
        the minimising window starts at an event (or just after one), so for
        each event two anchor windows are examined -- ``(t, t + dt]`` and
        ``(t + 1e-9, t + 1e-9 + dt]`` -- with all four boundary pointers
        advancing monotonically (O(n) total instead of the previous
        re-scan per anchor).
        """
        if dt <= 0 or not self.timestamps:
            return 0
        times = self.timestamps
        last = times[-1]
        span = last - times[0]
        if dt > span:
            return 0
        n = len(times)
        worst = n
        # Pointers: lo_* = first index strictly after the window start,
        # hi_* = first index strictly after the window end, for the two
        # anchor families (at an event / just after an event).
        lo_a = hi_a = lo_b = hi_b = 0
        for i, start in enumerate(times):
            if start + dt <= last + 1e-9:
                while lo_a < n and times[lo_a] <= start:
                    lo_a += 1
                while hi_a < n and times[hi_a] <= start + dt:
                    hi_a += 1
                if hi_a - lo_a < worst:
                    worst = hi_a - lo_a
            nudged = start + 1e-9
            if nudged + dt <= last + 1e-9:
                while lo_b < n and times[lo_b] <= nudged:
                    lo_b += 1
                while hi_b < n and times[hi_b] <= nudged + dt:
                    hi_b += 1
                if hi_b - lo_b < worst:
                    worst = hi_b - lo_b
        return max(worst, 0)

    def empirical_delta_minus(self, n: int) -> float:
        """Minimum observed span of ``n`` consecutive events."""
        if n < 2 or len(self.timestamps) < n:
            return 0.0
        times = self.timestamps
        return min(times[i + n - 1] - times[i] for i in range(len(times) - n + 1))

    def empirical_delta_plus(self, n: int) -> float:
        """Maximum observed span of ``n`` consecutive events."""
        if n < 2 or len(self.timestamps) < n:
            return 0.0
        times = self.timestamps
        return max(times[i + n - 1] - times[i] for i in range(len(times) - n + 1))

    def to_arrival_curve(self, label: str = "empirical") -> ArrivalCurve:
        """Wrap the empirical curves into an :class:`ArrivalCurve`."""
        return ArrivalCurve(
            eta_plus=self.empirical_eta_plus,
            eta_minus=self.empirical_eta_minus,
            label=label,
        )

    def inter_arrival_times(self) -> list[float]:
        """Distances between consecutive recorded events."""
        times = self.timestamps
        return [b - a for a, b in zip(times, times[1:])]


def curve_from_event_model(model, label: str | None = None) -> ArrivalCurve:
    """Build an :class:`ArrivalCurve` view of a standard event model."""
    return ArrivalCurve(
        eta_plus=model.eta_plus,
        eta_minus=model.eta_minus,
        label=label or model.describe(),
    )


def distance_from_event_model(model, label: str | None = None) -> DistanceFunction:
    """Build a :class:`DistanceFunction` view of a standard event model."""
    return DistanceFunction(
        delta_minus=model.delta_minus,
        delta_plus=model.delta_plus,
        label=label or model.describe(),
    )


def merge_traces(traces: Iterable[EmpiricalEventTrace]) -> EmpiricalEventTrace:
    """Merge several traces into one (e.g. all frames on a bus)."""
    merged: list[float] = []
    for trace in traces:
        merged.extend(trace.timestamps)
    return EmpiricalEventTrace(timestamps=merged)


def fit_periodic_jitter(trace: EmpiricalEventTrace, period: float,
                        max_n: int | None = 64,
                        min_distance: float = 0.0):
    """Fit the tightest conservative periodic-with-jitter model to a trace.

    Given the (known) nominal period, returns the standard event model with
    the smallest jitter ``J`` whose distance function lower-bounds the
    observed one::

        delta_minus(n) = max((n - 1) * period - J, 0)
                       <= empirical_delta_minus(n)   for all examined n

    i.e. ``J = max_n ((n - 1) * period - empirical_delta_minus(n))`` floored
    at zero.  By the standard eta/delta duality this makes the analytic
    ``eta_plus`` dominate the empirical arrival curve on every horizon the
    trace covers, so feeding the fitted model to the analysis yields a bound
    that is valid for the observed behaviour -- the *minimal* conservative
    re-derivation the conformance monitor needs when a message's observed
    arrivals escape its registered event model.

    ``max_n`` caps the span scan (``None`` examines every span the trace
    supports); the required jitter of a jittery-periodic source saturates at
    small ``n``, so the default keeps fitting O(len * 64).  The result comes
    from :func:`~repro.events.model.event_model_from_parameters`, so a fit
    with zero observed jitter is a plain :class:`PeriodicEventModel`.
    """
    from repro.events.model import event_model_from_parameters

    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    count = len(trace)
    limit = count if max_n is None else min(max_n, count)
    jitter = 0.0
    for n in range(2, limit + 1):
        required = (n - 1) * period - trace.empirical_delta_minus(n)
        if required > jitter:
            jitter = required
    return event_model_from_parameters(period, jitter=jitter,
                                       min_distance=min_distance)

"""Parameterised standard event models.

The classes here implement the eta/delta calculus for the standard event
models used throughout the library.  They are deliberately immutable value
objects: analysis code creates derived models (e.g. output event models with
increased jitter) instead of mutating existing ones, which keeps the global
fixed-point iteration in :mod:`repro.core` easy to reason about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


#: Relative snap tolerance for the robust integer divisions below.  It must
#: be large enough to absorb accumulated rounding noise of the fixed-point
#: sums (a few hundred ulps, i.e. < 1e-13 relative) yet strictly smaller than
#: any deliberate perturbation callers apply -- sensitivity probes nudge
#: windows by 1e-6 ms against periods up to ~1e3 ms, i.e. 1e-9 relative, so
#: an *absolute* 1e-9 snap (the previous rule) could swallow a real event.
_EPSILON = 1e-12


def _ceil_div(numerator: float, denominator: float) -> int:
    """Ceiling of ``numerator / denominator`` robust to float fuzz."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    value = numerator / denominator
    nearest = round(value)
    if abs(value - nearest) <= _EPSILON * max(1.0, abs(nearest)):
        return int(nearest)
    return int(math.ceil(value))


def _floor_div(numerator: float, denominator: float) -> int:
    """Floor of ``numerator / denominator`` robust to float fuzz."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    value = numerator / denominator
    nearest = round(value)
    if abs(value - nearest) <= _EPSILON * max(1.0, abs(nearest)):
        return int(nearest)
    return int(math.floor(value))


@dataclass(frozen=True)
class EventModel:
    """Base class for standard event models.

    Attributes
    ----------
    period:
        Average distance between events (ms).  For sporadic models this is
        the minimum inter-arrival time.
    jitter:
        Maximum deviation of an event from its periodic reference point (ms).
    min_distance:
        Minimum distance between any two consecutive events (ms).  Only
        meaningful when ``jitter >= period`` (burst models); otherwise the
        minimum distance implied by period and jitter is used.
    """

    period: float
    jitter: float = 0.0
    min_distance: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {self.jitter}")
        if self.min_distance < 0:
            raise ValueError(
                f"min_distance must be non-negative, got {self.min_distance}"
            )

    # ------------------------------------------------------------------ #
    # Arrival curves
    # ------------------------------------------------------------------ #
    def eta_plus(self, dt: float) -> int:
        """Maximum number of events in any half-open window of length ``dt``."""
        if dt <= 0:
            return 0
        by_jitter = _ceil_div(dt + self.jitter, self.period)
        if self.min_distance > 0:
            by_distance = _ceil_div(dt, self.min_distance) + 1
            return min(by_jitter, by_distance)
        return by_jitter

    def eta_minus(self, dt: float) -> int:
        """Minimum number of events in any half-open window of length ``dt``."""
        if dt <= self.jitter:
            return 0
        return max(0, _floor_div(dt - self.jitter, self.period))

    # ------------------------------------------------------------------ #
    # Distance functions
    # ------------------------------------------------------------------ #
    def delta_minus(self, n: int) -> float:
        """Minimum distance between the first and last of ``n`` events."""
        if n < 2:
            return 0.0
        spaced = (n - 1) * self.period - self.jitter
        if self.min_distance > 0:
            return max(spaced, (n - 1) * self.min_distance, 0.0)
        return max(spaced, 0.0)

    def delta_plus(self, n: int) -> float:
        """Maximum distance between the first and last of ``n`` events."""
        if n < 2:
            return 0.0
        return (n - 1) * self.period + self.jitter

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def rate(self) -> float:
        """Long-term average event rate (events per millisecond)."""
        return 1.0 / self.period

    @property
    def is_bursty(self) -> bool:
        """True when the jitter exceeds the period (events can pile up)."""
        return self.jitter > self.period

    @property
    def effective_min_distance(self) -> float:
        """Smallest possible distance between two consecutive events."""
        if self.is_bursty:
            return self.min_distance
        return max(self.period - self.jitter, self.min_distance, 0.0)

    def with_jitter(self, jitter: float) -> "EventModel":
        """Return a copy of this model with a different jitter."""
        return replace(self, jitter=float(jitter))

    def with_period(self, period: float) -> "EventModel":
        """Return a copy of this model with a different period."""
        return replace(self, period=float(period))

    def describe(self) -> str:
        """One-line human-readable description."""
        parts = [f"P={self.period:g}ms"]
        if self.jitter:
            parts.append(f"J={self.jitter:g}ms")
        if self.min_distance:
            parts.append(f"d_min={self.min_distance:g}ms")
        return f"{type(self).__name__}({', '.join(parts)})"


@dataclass(frozen=True)
class PeriodicEventModel(EventModel):
    """Strictly periodic activation: one event every ``period`` milliseconds."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.jitter != 0.0:
            raise ValueError("PeriodicEventModel requires zero jitter; "
                             "use PeriodicWithJitter instead")


@dataclass(frozen=True)
class PeriodicWithJitter(EventModel):
    """Periodic activation with bounded jitter (``jitter < period`` typical).

    The model admits jitter values up to and beyond the period; once the
    jitter exceeds the period consider :class:`PeriodicWithBurst` so that a
    realistic minimum distance bounds transient bursts.
    """


@dataclass(frozen=True)
class PeriodicWithBurst(EventModel):
    """Periodic activation with large jitter limited by a minimum distance.

    This is the standard "periodic with burst" event model: on average one
    event per ``period``, but transiently up to ``b = eta_plus(~0)`` events
    can arrive back to back, separated only by ``min_distance``.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.min_distance <= 0:
            raise ValueError("PeriodicWithBurst requires a positive min_distance")

    @property
    def burst_size(self) -> int:
        """Maximum number of events that can arrive (almost) simultaneously."""
        return self.eta_plus(self.min_distance)


@dataclass(frozen=True)
class SporadicEventModel(EventModel):
    """Events separated by at least ``period`` (minimum inter-arrival time)."""

    def eta_minus(self, dt: float) -> int:  # noqa: D102 - inherited semantics
        # A sporadic source gives no lower bound on the number of events.
        return 0


def event_model_from_parameters(
    period: float,
    jitter: float = 0.0,
    min_distance: float = 0.0,
    sporadic: bool = False,
) -> EventModel:
    """Build the most specific standard event model for the given parameters.

    This is the conversion used when importing K-Matrix rows or when deriving
    output event models: choose the narrowest class that represents the
    ``(period, jitter, min_distance)`` triple.

    Parameters
    ----------
    period:
        Activation period or minimum inter-arrival time in milliseconds.
    jitter:
        Activation jitter in milliseconds.
    min_distance:
        Minimum distance between consecutive events; only used when the
        jitter exceeds the period.
    sporadic:
        When true, return a :class:`SporadicEventModel` regardless of jitter.
    """
    if sporadic:
        return SporadicEventModel(period=period, jitter=jitter,
                                  min_distance=min_distance)
    if jitter <= 0:
        return PeriodicEventModel(period=period)
    if jitter > period and min_distance > 0:
        return PeriodicWithBurst(period=period, jitter=jitter,
                                 min_distance=min_distance)
    return PeriodicWithJitter(period=period, jitter=jitter,
                              min_distance=min_distance)

"""Standard event models and arrival-curve calculus.

SymTA/S-style compositional analysis describes how often an event (a message
queued for transmission, a task activation) can occur using *standard event
models* (Richter, "Compositional Scheduling Analysis Using Standard Event
Models", PhD thesis 2005).  An event model is characterised by the pair of
arrival curves

* ``eta_plus(dt)``  -- the maximum number of events in any half-open time
  window of length ``dt``;
* ``eta_minus(dt)`` -- the minimum number of events in any such window;

or, equivalently, by the distance functions

* ``delta_minus(n)`` -- the minimum distance between the first and the last
  event of any sequence of ``n`` events;
* ``delta_plus(n)``  -- the maximum such distance.

Three parameterised families cover automotive practice:

``PeriodicEventModel``
    strictly periodic activation (period ``P``).
``PeriodicWithJitter``
    periodic activation whose individual events may be displaced by up to
    ``J`` time units from the periodic reference grid.
``PeriodicWithBurst``
    periodic activation with jitter larger than the period, limited by a
    minimum inter-event distance ``d_min`` (models bursts of back-to-back
    events, e.g. gateway output or diagnostic traffic).
``SporadicEventModel``
    events separated by at least a minimum inter-arrival time (the classic
    sporadic task model); mathematically a periodic model whose period is the
    minimum inter-arrival time, used where only a rate bound is known.

All models in this package use *milliseconds* as the canonical time unit,
matching the K-Matrix convention, but nothing depends on the unit choice.
"""

from repro.events.model import (
    EventModel,
    PeriodicEventModel,
    PeriodicWithBurst,
    PeriodicWithJitter,
    SporadicEventModel,
    event_model_from_parameters,
)
from repro.events.curves import (
    ArrivalCurve,
    DistanceFunction,
    EmpiricalEventTrace,
    fit_periodic_jitter,
    merge_traces,
)
from repro.events.operations import (
    add_jitter,
    combine_and,
    conservative_union,
    is_refinement,
    output_event_model,
    scale_period,
)

__all__ = [
    "ArrivalCurve",
    "DistanceFunction",
    "EmpiricalEventTrace",
    "EventModel",
    "fit_periodic_jitter",
    "merge_traces",
    "PeriodicEventModel",
    "PeriodicWithJitter",
    "PeriodicWithBurst",
    "SporadicEventModel",
    "event_model_from_parameters",
    "add_jitter",
    "combine_and",
    "conservative_union",
    "is_refinement",
    "output_event_model",
    "scale_period",
]

"""Worst-case error-overhead functions for CAN.

All models implement the same contract: ``overhead(t, recovery, retransmit)``
is a monotonically non-decreasing function of the window length ``t`` giving
the worst-case time (ms) consumed by error signalling and retransmissions in
any window of length ``t``.

* ``recovery`` is the worst-case duration of one error-signalling sequence
  (31 bit times, see :func:`repro.can.frame.error_recovery_overhead`);
* ``retransmit`` is the worst-case transmission time of the longest frame
  that could have been corrupted and must be resent -- the analysis passes
  the longest frame of priority higher than or equal to the message under
  analysis, per the classical Tindell/Burns formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def _count_arrivals(t: float, period: float) -> int:
    """Number of sporadic arrivals with minimum separation ``period`` in ``t``.

    One arrival can always coincide with the start of the window; further
    arrivals need a full ``period`` each.  ``t <= 0`` yields zero.
    """
    if t <= 0:
        return 0
    value = t / period
    nearest = round(value)
    if abs(value - nearest) < 1e-9:
        value = nearest
    return 1 + int(math.floor(value))


@dataclass(frozen=True)
class ErrorModel:
    """Base class: no errors at all (also usable directly)."""

    def overhead(self, t: float, recovery: float, retransmit: float) -> float:
        """Worst-case error-handling time in a window of length ``t`` (ms)."""
        del t, recovery, retransmit
        return 0.0

    def errors_in(self, t: float) -> int:
        """Worst-case number of corrupted frames in a window of length ``t``."""
        del t
        return 0

    def describe(self) -> str:
        """Human-readable one-liner used in reports."""
        return "no errors"


@dataclass(frozen=True)
class NoErrors(ErrorModel):
    """Explicit alias of the error-free model for readability."""


@dataclass(frozen=True)
class SporadicErrorModel(ErrorModel):
    """At most one error per ``min_interarrival`` milliseconds.

    This is the MTBF-style model of Tindell & Burns: the bound holds as long
    as single-bit upsets are separated by at least ``min_interarrival``.

    Attributes
    ----------
    min_interarrival:
        Minimum distance between two error events in milliseconds.  Typical
        values for a noisy vehicle environment are in the 5..50 ms range; the
        model degenerates gracefully for very large values (rare errors).
    """

    min_interarrival: float = 10.0

    def __post_init__(self) -> None:
        if self.min_interarrival <= 0:
            raise ValueError("min_interarrival must be positive")

    def errors_in(self, t: float) -> int:
        return _count_arrivals(t, self.min_interarrival)

    def overhead(self, t: float, recovery: float, retransmit: float) -> float:
        return self.errors_in(t) * (recovery + retransmit)

    def describe(self) -> str:
        return f"sporadic errors (>= {self.min_interarrival:g} ms apart)"


@dataclass(frozen=True)
class BurstErrorModel(ErrorModel):
    """Errors arrive in bursts (Punnekkat, Hansson & Norström).

    A burst consists of up to ``burst_length`` error events separated by at
    most ``intra_burst_gap`` milliseconds; bursts themselves are separated by
    at least ``min_interarrival`` milliseconds.  Each error in a burst costs
    an error-recovery sequence plus a retransmission of the corrupted frame.

    Attributes
    ----------
    min_interarrival:
        Minimum distance between the *starts* of two bursts (ms).
    burst_length:
        Maximum number of errors per burst.
    intra_burst_gap:
        Maximum spacing between consecutive errors inside one burst (ms);
        only used to bound how many errors of a burst can fall into a short
        window.
    """

    min_interarrival: float = 50.0
    burst_length: int = 3
    intra_burst_gap: float = 1.0

    def __post_init__(self) -> None:
        if self.min_interarrival <= 0:
            raise ValueError("min_interarrival must be positive")
        if self.burst_length < 1:
            raise ValueError("burst_length must be at least 1")
        if self.intra_burst_gap < 0:
            raise ValueError("intra_burst_gap must be non-negative")
        if self.burst_length * self.intra_burst_gap >= self.min_interarrival:
            raise ValueError(
                "burst must fit inside the inter-burst distance: "
                "burst_length * intra_burst_gap < min_interarrival")

    def errors_in(self, t: float) -> int:
        if t <= 0:
            return 0
        bursts = _count_arrivals(t, self.min_interarrival)
        # Within the window the last burst may only partially fit; bound the
        # number of its errors by the intra-burst spacing.
        if self.intra_burst_gap > 0:
            partial = min(self.burst_length, 1 + int(t // self.intra_burst_gap))
        else:
            partial = self.burst_length
        full_bursts = max(bursts - 1, 0)
        return full_bursts * self.burst_length + partial

    def overhead(self, t: float, recovery: float, retransmit: float) -> float:
        return self.errors_in(t) * (recovery + retransmit)

    def describe(self) -> str:
        return (f"burst errors (bursts of {self.burst_length}, "
                f">= {self.min_interarrival:g} ms apart)")


@dataclass(frozen=True)
class CompositeErrorModel(ErrorModel):
    """Superposition of several independent error sources.

    The worst-case overheads of independent sources simply add; this is the
    standard conservative composition (e.g. background single-bit upsets plus
    occasional EMI bursts from ignition).
    """

    components: tuple[ErrorModel, ...] = ()

    def errors_in(self, t: float) -> int:
        return sum(component.errors_in(t) for component in self.components)

    def overhead(self, t: float, recovery: float, retransmit: float) -> float:
        return sum(component.overhead(t, recovery, retransmit)
                   for component in self.components)

    def describe(self) -> str:
        if not self.components:
            return "no errors"
        return " + ".join(component.describe() for component in self.components)


def composite(models: Sequence[ErrorModel]) -> ErrorModel:
    """Convenience constructor collapsing trivial compositions."""
    real = [m for m in models if not isinstance(m, NoErrors) and type(m) is not ErrorModel]
    if not real:
        return NoErrors()
    if len(real) == 1:
        return real[0]
    return CompositeErrorModel(components=tuple(real))

"""Bus-error models for CAN response-time analysis.

CAN retransmits corrupted frames automatically, so transmission errors show
up in the timing analysis as additional interference: every error costs an
error-signalling sequence (up to 31 bit times) plus the retransmission of the
longest frame that may have been hit.  The paper uses two practically useful
models:

* the *sporadic* model of Tindell & Burns (ref [7]): at most one error every
  ``T_error`` milliseconds (an MTBF-style bound);
* the *burst* model of Punnekkat, Hansson & Norström (ref [8]): errors arrive
  in bursts of up to ``burst_length`` closely spaced errors, bursts separated
  by at least ``T_error``.

Both are exposed through a single interface, :class:`ErrorModel`, whose
``overhead(t, ...)`` method returns the worst-case time consumed by error
handling in a busy window of length ``t``.
"""

from repro.errors.models import (
    BurstErrorModel,
    CompositeErrorModel,
    ErrorModel,
    NoErrors,
    SporadicErrorModel,
)

__all__ = [
    "ErrorModel",
    "NoErrors",
    "SporadicErrorModel",
    "BurstErrorModel",
    "CompositeErrorModel",
]

"""Cooperative cancellation and deadlines for long-running analyses.

A :class:`CancelToken` is a small, thread-safe object shared between the
party that *requests* a computation (the daemon's request handler, a
client-supplied ``deadline_ms``) and the code that *performs* it (the
fixed-point loops of :mod:`repro.analysis.response_time` and the lockstep
sweep of :mod:`repro.analysis.vector`).  The performing side calls
:meth:`CancelToken.check` between fixed-point iterations; the requesting
side either arms a deadline at construction time or calls
:meth:`CancelToken.cancel` later (the daemon's graceful drain does).  When
either fires, the computation raises a typed :class:`Cancelled` (or its
deadline subclass :class:`DeadlineExceeded`) instead of pinning a worker
until the iteration cap.

Cancellation never leaves corrupted state behind: every cancellable loop
in the analysis stack is pure (it produces a value or raises), and session
caches are only updated from *completed* results, so a cancelled query
simply never happened as far as the caches are concerned.

The checks are designed to be free when unused: every call site is guarded
by ``if cancel is not None``, so code paths without a deadline pay one
pointer comparison per fixed-point iteration -- far below the cost of the
iteration itself (benchmarks gate this).
"""

from __future__ import annotations

import threading
import time
from typing import Optional


class Cancelled(RuntimeError):
    """A computation was cooperatively cancelled.

    ``reason`` is a short machine-readable tag: ``"cancelled"`` for an
    explicit :meth:`CancelToken.cancel`, ``"deadline"`` for an expired
    deadline (raised as :class:`DeadlineExceeded`), ``"draining"`` when a
    shutting-down daemon revoked in-flight work.
    """

    def __init__(self, message: str = "cancelled",
                 reason: str = "cancelled") -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceeded(Cancelled):
    """The computation ran past its caller-supplied deadline."""

    def __init__(self, message: str = "deadline exceeded") -> None:
        super().__init__(message, reason="deadline")


class CancelToken:
    """Cooperative cancellation handle with an optional monotonic deadline.

    Thread-safe by construction: the explicit-cancel path is an
    :class:`threading.Event`, the deadline is an immutable float compared
    against :func:`time.monotonic`.  Tokens are cheap enough to create one
    per request.
    """

    __slots__ = ("_event", "_deadline", "_reason")

    def __init__(self, deadline: Optional[float] = None) -> None:
        self._event = threading.Event()
        self._deadline = deadline
        self._reason = "cancelled"

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def after(cls, seconds: float) -> "CancelToken":
        """Token whose deadline is ``seconds`` from now."""
        return cls(deadline=time.monotonic() + seconds)

    @classmethod
    def after_ms(cls, milliseconds: float) -> "CancelToken":
        """Token whose deadline is ``milliseconds`` from now (the protocol's
        ``deadline_ms`` unit)."""
        return cls.after(milliseconds / 1000.0)

    # ------------------------------------------------------------------ #
    # Requesting side
    # ------------------------------------------------------------------ #
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    # ------------------------------------------------------------------ #
    # Performing side
    # ------------------------------------------------------------------ #
    @property
    def deadline(self) -> Optional[float]:
        """The monotonic deadline, or ``None`` for cancel-only tokens."""
        return self._deadline

    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return (self._deadline is not None
                and time.monotonic() >= self._deadline)

    def cancelled(self) -> bool:
        """Whether the token has fired (explicitly or by deadline)."""
        return self._event.is_set() or self.expired()

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` without one; floored at 0)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def check(self) -> None:
        """Raise :class:`Cancelled`/:class:`DeadlineExceeded` if fired."""
        if self._event.is_set():
            raise Cancelled(f"computation {self._reason}",
                            reason=self._reason)
        if self.expired():
            raise DeadlineExceeded()

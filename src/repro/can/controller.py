"""CAN controller models.

The paper (Section 3.2) points out that the controller type -- basicCAN,
fullCAN, or a queued controller -- influences the order in which messages
leave an ECU and therefore the timing on the bus.  The analysis captures the
controller through two effects:

* an *internal blocking* term: with a single transmit buffer (basicCAN) a
  lower-priority frame of the *same ECU* that is already in the buffer delays
  a higher-priority one in addition to the bus-level blocking;
* a *priority-inversion* flag used by the simulator: a FIFO-queued controller
  sends frames in software queuing order rather than identifier order.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence


class CanControllerType(str, Enum):
    """Transmit-side behaviour of the CAN controller hardware."""

    #: One (or very few) transmit buffer; the driver copies the next frame in
    #: when the buffer frees up.  A lower-priority frame already in the buffer
    #: cannot be aborted, which adds same-ECU blocking.
    BASIC = "basicCAN"

    #: One transmit buffer per message object; the hardware always arbitrates
    #: with the highest-priority pending frame, so no same-ECU blocking beyond
    #: the frame already on the wire.
    FULL = "fullCAN"

    #: Software FIFO in front of a single buffer; frames leave the ECU in
    #: queuing order regardless of identifier -- the worst case for
    #: priority-based analysis and modelled conservatively.
    QUEUED_FIFO = "queuedFIFO"


@dataclass(frozen=True)
class ControllerModel:
    """Controller configuration of one ECU.

    Attributes
    ----------
    controller_type:
        Hardware/driver behaviour, see :class:`CanControllerType`.
    tx_buffers:
        Number of hardware transmit buffers (only used for reporting and by
        the simulator's buffer-occupancy model).
    abort_on_higher_priority:
        Whether the driver aborts a pending lower-priority transmission when
        a higher-priority frame is queued (some basicCAN drivers do).
    """

    controller_type: CanControllerType = CanControllerType.FULL
    tx_buffers: int = 3
    abort_on_higher_priority: bool = False

    def __post_init__(self) -> None:
        if self.tx_buffers < 1:
            raise ValueError("tx_buffers must be at least 1")

    @property
    def preserves_priority_order(self) -> bool:
        """True when frames leave the ECU strictly in identifier order."""
        if self.controller_type == CanControllerType.FULL:
            return True
        if self.controller_type == CanControllerType.BASIC:
            return self.abort_on_higher_priority
        return False

    def internal_blocking(
        self,
        message_name: str,
        same_ecu_transmission_times: dict[str, float],
    ) -> float:
        """Additional blocking caused by the ECU's own lower-priority frames.

        Parameters
        ----------
        message_name:
            The message under analysis.
        same_ecu_transmission_times:
            Worst-case transmission times (ms) of all messages sent by the
            same ECU, keyed by message name, **ordered by priority is not
            required** -- the caller passes only the messages with lower
            priority than the one under analysis.

        Returns
        -------
        float
            Extra blocking in milliseconds.  FullCAN controllers (and
            basicCAN drivers that abort) add nothing; plain basicCAN adds one
            worst-case lower-priority frame of the same ECU; FIFO-queued
            controllers conservatively add the sum of all same-ECU frames that
            could be queued ahead.
        """
        others = {
            name: c for name, c in same_ecu_transmission_times.items()
            if name != message_name
        }
        if not others:
            return 0.0
        if self.preserves_priority_order:
            return 0.0
        if self.controller_type == CanControllerType.BASIC:
            return max(others.values())
        # QUEUED_FIFO: everything already queued may go first; bound by the
        # number of buffers that can hold frames ahead of ours.
        ahead = sorted(others.values(), reverse=True)
        slots = max(self.tx_buffers - 1, 1)
        return float(sum(ahead[:slots]))


def default_controllers(ecu_names: Iterable[str],
                        controller_type: CanControllerType = CanControllerType.FULL,
                        ) -> dict[str, ControllerModel]:
    """Build a uniform controller assignment for a set of ECUs."""
    model = ControllerModel(controller_type=controller_type)
    return {name: model for name in ecu_names}


def mixed_controllers(assignments: dict[str, CanControllerType],
                      default: CanControllerType = CanControllerType.FULL,
                      ecu_names: Sequence[str] = (),
                      ) -> dict[str, ControllerModel]:
    """Build a per-ECU controller map from explicit assignments plus default."""
    result = {name: ControllerModel(controller_type=default) for name in ecu_names}
    for name, ctype in assignments.items():
        result[name] = ControllerModel(controller_type=ctype)
    return result

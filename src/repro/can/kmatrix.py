"""The K-Matrix: the OEM's communication matrix.

The K-Matrix (Kommunikationsmatrix) is the central design artefact the OEM
owns: it lists every message on every bus together with its identifier,
length, period and the sending / receiving ECUs.  The paper's case study
imports length, CAN id and period from a real K-Matrix; this module provides
the equivalent container with validation, queries, CSV round-tripping and the
re-prioritisation hooks used by the optimizer.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Mapping

from repro.can.frame import CanFrameFormat
from repro.can.message import CanMessage


class KMatrixValidationError(ValueError):
    """Raised when a K-Matrix violates CAN or consistency constraints."""


@dataclass
class KMatrix:
    """A validated collection of :class:`CanMessage` rows.

    The container enforces the invariants that CAN itself enforces (unique
    identifiers on one bus, identifier ranges) plus the consistency rules an
    OEM toolchain would check (unique names, known senders).
    """

    messages: list[CanMessage] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check uniqueness constraints; raise :class:`KMatrixValidationError`."""
        names: set[str] = set()
        ids: set[int] = set()
        for message in self.messages:
            if message.name in names:
                raise KMatrixValidationError(
                    f"duplicate message name {message.name!r}")
            if message.can_id in ids:
                raise KMatrixValidationError(
                    f"duplicate CAN identifier 0x{message.can_id:X} "
                    f"(message {message.name!r})")
            names.add(message.name)
            ids.add(message.can_id)

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[CanMessage]:
        return iter(self.messages)

    def __contains__(self, name: str) -> bool:
        return any(message.name == name for message in self.messages)

    def add(self, message: CanMessage) -> None:
        """Add a message, re-validating the matrix."""
        self.messages.append(message)
        try:
            self.validate()
        except KMatrixValidationError:
            self.messages.pop()
            raise

    def remove(self, name: str) -> CanMessage:
        """Remove and return the message with the given name."""
        for index, message in enumerate(self.messages):
            if message.name == name:
                return self.messages.pop(index)
        raise KeyError(name)

    def get(self, name: str) -> CanMessage:
        """Return the message with the given name."""
        for message in self.messages:
            if message.name == name:
                return message
        raise KeyError(name)

    def by_id(self, can_id: int) -> CanMessage:
        """Return the message with the given CAN identifier."""
        for message in self.messages:
            if message.can_id == can_id:
                return message
        raise KeyError(f"0x{can_id:X}")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def sorted_by_priority(self) -> list[CanMessage]:
        """Messages ordered from highest priority (lowest id) to lowest."""
        return sorted(self.messages, key=lambda m: m.can_id)

    def sent_by(self, ecu_name: str) -> list[CanMessage]:
        """Messages sent by the given ECU."""
        return [m for m in self.messages if m.sender == ecu_name]

    def received_by(self, ecu_name: str) -> list[CanMessage]:
        """Messages received by the given ECU."""
        return [m for m in self.messages if ecu_name in m.receivers]

    def ecu_names(self) -> list[str]:
        """All ECU names appearing as senders or receivers, sorted."""
        names: set[str] = set()
        for message in self.messages:
            names.add(message.sender)
            names.update(message.receivers)
        return sorted(names)

    def senders(self) -> list[str]:
        """All ECU names appearing as senders, sorted."""
        return sorted({m.sender for m in self.messages})

    def messages_with_unknown_jitter(self) -> list[CanMessage]:
        """Messages for which the K-Matrix specifies no send jitter."""
        return [m for m in self.messages if m.jitter is None]

    def higher_priority_than(self, message: CanMessage) -> list[CanMessage]:
        """Messages that win arbitration against ``message``."""
        return [m for m in self.messages if m.can_id < message.can_id]

    def lower_priority_than(self, message: CanMessage) -> list[CanMessage]:
        """Messages that lose arbitration against ``message``."""
        return [m for m in self.messages if m.can_id > message.can_id]

    def total_payload_bits_per_ms(self) -> float:
        """Average payload bits per millisecond (without protocol overhead)."""
        return sum(m.payload_bits() / m.period for m in self.messages)

    # ------------------------------------------------------------------ #
    # Derived matrices
    # ------------------------------------------------------------------ #
    def with_priorities(self, id_by_name: Mapping[str, int]) -> "KMatrix":
        """New matrix with re-assigned CAN identifiers (the optimizer hook).

        Messages not present in ``id_by_name`` keep their identifier; the
        result is re-validated so conflicting assignments fail loudly.
        """
        replaced = [
            m.with_can_id(id_by_name.get(m.name, m.can_id)) for m in self.messages
        ]
        return KMatrix(messages=replaced)

    def with_assumed_jitters(self, jitter_fraction: float) -> "KMatrix":
        """New matrix with unknown jitters replaced by a fraction of the period.

        This implements the paper's experiment knob: "we assumed realistic
        jitters for the unknown messages", swept as a percentage of each
        message's period.  Known jitters are preserved.
        """
        if jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")
        replaced = []
        for message in self.messages:
            if message.jitter is None:
                replaced.append(message.with_jitter(jitter_fraction * message.period))
            else:
                replaced.append(message)
        return KMatrix(messages=replaced)

    def with_all_jitters(self, jitter_fraction: float) -> "KMatrix":
        """New matrix where *every* jitter is ``jitter_fraction * period``."""
        if jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")
        replaced = [m.with_jitter(jitter_fraction * m.period) for m in self.messages]
        return KMatrix(messages=replaced)

    def map_messages(self, transform: Callable[[CanMessage], CanMessage]) -> "KMatrix":
        """New matrix with ``transform`` applied to every message."""
        return KMatrix(messages=[transform(m) for m in self.messages])

    def subset(self, names: Iterable[str]) -> "KMatrix":
        """New matrix containing only the named messages."""
        wanted = set(names)
        return KMatrix(messages=[m for m in self.messages if m.name in wanted])

    # ------------------------------------------------------------------ #
    # CSV import / export (the de-facto exchange format for K-Matrices)
    # ------------------------------------------------------------------ #
    _CSV_FIELDS = (
        "name", "can_id", "dlc", "period_ms", "jitter_ms", "deadline_ms",
        "sender", "receivers", "frame_format", "min_distance_ms",
    )

    def to_csv(self, path: str | Path | None = None) -> str:
        """Serialise the matrix to CSV; write to ``path`` when given."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self._CSV_FIELDS)
        writer.writeheader()
        for message in self.sorted_by_priority():
            writer.writerow({
                "name": message.name,
                "can_id": f"0x{message.can_id:X}",
                "dlc": message.dlc,
                "period_ms": f"{message.period:g}",
                "jitter_ms": "" if message.jitter is None else f"{message.jitter:g}",
                "deadline_ms": (
                    "" if message.deadline is None else f"{message.deadline:g}"),
                "sender": message.sender,
                "receivers": ";".join(message.receivers),
                "frame_format": message.frame_format.value,
                "min_distance_ms": f"{message.min_distance:g}",
            })
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_csv(cls, source: str | Path) -> "KMatrix":
        """Parse a K-Matrix from CSV text or a CSV file path."""
        if isinstance(source, Path) or (
                isinstance(source, str) and "\n" not in source
                and Path(source).exists()):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = str(source)
        reader = csv.DictReader(io.StringIO(text))
        messages = []
        for row in reader:
            can_id_text = row["can_id"].strip()
            can_id = int(can_id_text, 16) if can_id_text.lower().startswith("0x") \
                else int(can_id_text)
            jitter_text = (row.get("jitter_ms") or "").strip()
            deadline_text = (row.get("deadline_ms") or "").strip()
            receivers_text = (row.get("receivers") or "").strip()
            messages.append(CanMessage(
                name=row["name"].strip(),
                can_id=can_id,
                dlc=int(row["dlc"]),
                period=float(row["period_ms"]),
                jitter=float(jitter_text) if jitter_text else None,
                deadline=float(deadline_text) if deadline_text else None,
                sender=row["sender"].strip(),
                receivers=tuple(
                    r for r in receivers_text.split(";") if r) if receivers_text
                else (),
                frame_format=CanFrameFormat(
                    (row.get("frame_format") or "standard").strip()),
                min_distance=float(row.get("min_distance_ms") or 0.0),
            ))
        return cls(messages=messages)

    def describe(self) -> str:
        """Multi-line summary used by examples and reports."""
        lines = [f"K-Matrix with {len(self)} messages, "
                 f"{len(self.ecu_names())} ECUs"]
        for message in self.sorted_by_priority():
            lines.append("  " + message.describe())
        return "\n".join(lines)

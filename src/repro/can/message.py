"""K-Matrix message abstraction.

A :class:`CanMessage` is one row of the communication matrix: a CAN frame
with an identifier (which doubles as its arbitration priority), a payload
length, a sending ECU, receiving ECUs, and the timing attributes the OEM
knows (period) or assumes (jitter, deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional

from repro.can.frame import CanFrameFormat
from repro.events.model import EventModel, event_model_from_parameters


class MessageDirection(str, Enum):
    """Direction of a message from the point of view of one ECU."""

    SEND = "send"
    RECEIVE = "receive"


@dataclass(frozen=True)
class SignalSpec:
    """A signal packed into a CAN message (name, start bit, length in bits).

    Signals do not influence the timing analysis directly, but carrying them
    through the K-Matrix lets examples show realistic message payload layouts
    and lets the gateway route individual signals between buses.
    """

    name: str
    start_bit: int
    length_bits: int

    def __post_init__(self) -> None:
        if self.start_bit < 0 or self.length_bits <= 0:
            raise ValueError("signal start_bit must be >= 0 and length > 0")
        if self.start_bit + self.length_bits > 64:
            raise ValueError(
                f"signal {self.name!r} exceeds the 64-bit CAN payload")


@dataclass(frozen=True)
class CanMessage:
    """One message (frame) of the communication matrix.

    Attributes
    ----------
    name:
        Unique symbolic name, e.g. ``"EngineTorque1"``.
    can_id:
        CAN identifier.  Lower identifiers win arbitration, i.e. the CAN id
        *is* the priority of the message on the bus.
    dlc:
        Data length code -- number of payload bytes (0..8).
    period:
        Sending period in milliseconds (from the K-Matrix).
    jitter:
        Queuing jitter of the sending ECU in milliseconds.  Unknown jitters
        are represented as ``None`` and filled in by experiment assumptions.
    deadline:
        Relative deadline in milliseconds.  The paper's strictest experiment
        uses the minimum re-arrival time (i.e. ``period - jitter``); when the
        deadline is ``None`` the analysis derives it from the configured
        deadline policy.
    sender:
        Name of the sending ECU.
    receivers:
        Names of the receiving ECUs.
    frame_format:
        Standard (11-bit) or extended (29-bit) identifier.
    signals:
        Optional payload layout.
    min_distance:
        Minimum distance between two queuings of this message (ms); only
        relevant for bursty senders such as gateways or diagnostics.
    """

    name: str
    can_id: int
    dlc: int
    period: float
    sender: str
    receivers: tuple[str, ...] = ()
    jitter: Optional[float] = None
    deadline: Optional[float] = None
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD
    signals: tuple[SignalSpec, ...] = ()
    min_distance: float = 0.0

    def __post_init__(self) -> None:
        if self.can_id < 0:
            raise ValueError(f"can_id must be non-negative, got {self.can_id}")
        max_id = 0x7FF if self.frame_format == CanFrameFormat.STANDARD else 0x1FFFFFFF
        if self.can_id > max_id:
            raise ValueError(
                f"can_id 0x{self.can_id:X} does not fit the "
                f"{self.frame_format.value} format (max 0x{max_id:X})")
        if not 0 <= self.dlc <= 8:
            raise ValueError(f"dlc must be 0..8, got {self.dlc}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.jitter is not None and self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.min_distance < 0:
            raise ValueError("min_distance must be non-negative")

    # ------------------------------------------------------------------ #
    # Priorities and deadlines
    # ------------------------------------------------------------------ #
    @property
    def priority(self) -> int:
        """Arbitration priority: identical to the CAN identifier.

        Smaller values denote *higher* priority, matching CAN arbitration.
        """
        return self.can_id

    @property
    def jitter_known(self) -> bool:
        """Whether the K-Matrix specifies a send jitter for this message."""
        return self.jitter is not None

    def effective_jitter(self, assumed_jitter_fraction: float = 0.0) -> float:
        """Jitter to use in analysis.

        Known jitters are used as-is; unknown jitters are assumed to be
        ``assumed_jitter_fraction * period`` -- the knob the paper's
        experiments sweep ("jitter in % of message period").
        """
        if self.jitter is not None:
            return self.jitter
        if assumed_jitter_fraction < 0:
            raise ValueError("assumed_jitter_fraction must be non-negative")
        return assumed_jitter_fraction * self.period

    def effective_deadline(self, policy: str = "period",
                           jitter: float | None = None) -> float:
        """Deadline to verify against.

        Policies
        --------
        ``"period"``
            Deadline equals the period (implicit deadline): the message must
            be transmitted before its next instance is queued.
        ``"min-rearrival"``
            Deadline equals the minimum re-arrival time ``period - jitter``:
            the strictest interpretation used in the paper's worst-case
            experiment (the send buffer may be overwritten as soon as the
            next instance can arrive).
        ``"explicit"``
            Use the explicit per-message deadline, falling back to the period
            when none is given.
        """
        if policy == "explicit":
            return self.deadline if self.deadline is not None else self.period
        if policy == "period":
            return self.period
        if policy == "min-rearrival":
            effective_jitter = self.jitter if jitter is None else jitter
            effective_jitter = effective_jitter or 0.0
            return max(self.period - effective_jitter, 1e-6)
        raise ValueError(f"unknown deadline policy {policy!r}")

    # ------------------------------------------------------------------ #
    # Event model and derived copies
    # ------------------------------------------------------------------ #
    def event_model(self, assumed_jitter_fraction: float = 0.0) -> EventModel:
        """Standard event model describing the queuing of this message."""
        return event_model_from_parameters(
            period=self.period,
            jitter=self.effective_jitter(assumed_jitter_fraction),
            min_distance=self.min_distance,
        )

    def with_can_id(self, can_id: int) -> "CanMessage":
        """Copy of this message with a different identifier (re-prioritised)."""
        return replace(self, can_id=can_id)

    def with_jitter(self, jitter: Optional[float]) -> "CanMessage":
        """Copy of this message with a different (or unknown) jitter."""
        return replace(self, jitter=jitter)

    def with_period(self, period: float) -> "CanMessage":
        """Copy of this message with a different period."""
        return replace(self, period=period)

    def payload_bits(self) -> int:
        """Number of payload bits carried by the frame."""
        return self.dlc * 8

    def describe(self) -> str:
        """One-line human readable summary used in reports."""
        jitter = "?" if self.jitter is None else f"{self.jitter:g}"
        return (f"{self.name}: id=0x{self.can_id:03X} dlc={self.dlc} "
                f"T={self.period:g}ms J={jitter}ms sender={self.sender}")

"""CAN protocol substrate.

Everything the timing analysis needs to know about Controller Area Network
hardware lives here:

* :mod:`repro.can.frame` -- frame formats, worst-/best-case transmission
  times including bit stuffing, protocol overheads;
* :mod:`repro.can.message` -- the K-Matrix message abstraction (CAN id,
  length, period, jitter, deadline, sender/receivers);
* :mod:`repro.can.kmatrix` -- the communication matrix container with
  consistency checks, CSV import/export and convenience queries;
* :mod:`repro.can.bus` -- bus configuration (bit rate, protocol variant) and
  derived per-message transmission times;
* :mod:`repro.can.controller` -- controller models (basicCAN / fullCAN /
  queued) and the internal blocking they add.
"""

from repro.can.frame import (
    CanFrameFormat,
    best_case_transmission_time,
    frame_bits_without_stuffing,
    max_stuff_bits,
    worst_case_frame_bits,
    worst_case_transmission_time,
)
from repro.can.message import CanMessage, MessageDirection, SignalSpec
from repro.can.controller import CanControllerType, ControllerModel
from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix, KMatrixValidationError

__all__ = [
    "CanFrameFormat",
    "frame_bits_without_stuffing",
    "max_stuff_bits",
    "worst_case_frame_bits",
    "worst_case_transmission_time",
    "best_case_transmission_time",
    "CanMessage",
    "MessageDirection",
    "SignalSpec",
    "CanControllerType",
    "ControllerModel",
    "CanBus",
    "KMatrix",
    "KMatrixValidationError",
]

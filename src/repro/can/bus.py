"""CAN bus configuration.

A :class:`CanBus` bundles the physical parameters of one bus segment (bit
rate, whether worst-case bit stuffing is assumed) and provides per-message
transmission times, the values that feed both the load analysis and the
response-time analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.can.frame import (
    best_case_transmission_time, error_recovery_overhead,
    worst_case_transmission_time,
)
from repro.can.message import CanMessage


@dataclass(frozen=True)
class CanBus:
    """One CAN bus segment.

    Attributes
    ----------
    name:
        Symbolic name, e.g. ``"Powertrain-CAN"``.
    bit_rate_bps:
        Bit rate in bits per second; the case study uses 500 kbit/s.
    bit_stuffing:
        Whether worst-case bit stuffing is included in worst-case
        transmission times.  The paper's best-case experiments exclude it,
        the worst-case ones include it.
    """

    name: str
    bit_rate_bps: float = 500_000.0
    bit_stuffing: bool = True

    def __post_init__(self) -> None:
        if self.bit_rate_bps <= 0:
            raise ValueError("bit_rate_bps must be positive")

    @property
    def bit_time_ms(self) -> float:
        """Duration of one bit on the wire in milliseconds."""
        return 1000.0 / self.bit_rate_bps

    # ------------------------------------------------------------------ #
    # Per-message timing
    # ------------------------------------------------------------------ #
    def transmission_time(self, message: CanMessage) -> float:
        """Worst-case transmission time of ``message`` on this bus (ms)."""
        return worst_case_transmission_time(
            payload_bytes=message.dlc,
            bit_rate_bps=self.bit_rate_bps,
            frame_format=message.frame_format,
            bit_stuffing=self.bit_stuffing,
        )

    def best_case_transmission_time(self, message: CanMessage) -> float:
        """Best-case transmission time of ``message`` on this bus (ms)."""
        return best_case_transmission_time(
            payload_bytes=message.dlc,
            bit_rate_bps=self.bit_rate_bps,
            frame_format=message.frame_format,
        )

    def error_recovery_time(self) -> float:
        """Worst-case duration of one error signalling sequence (ms)."""
        return error_recovery_overhead(self.bit_rate_bps)

    def with_bit_stuffing(self, enabled: bool) -> "CanBus":
        """Copy of this bus with bit stuffing switched on or off."""
        return CanBus(name=self.name, bit_rate_bps=self.bit_rate_bps,
                      bit_stuffing=enabled)

    def with_bit_rate(self, bit_rate_bps: float) -> "CanBus":
        """Copy of this bus running at a different bit rate."""
        return CanBus(name=self.name, bit_rate_bps=bit_rate_bps,
                      bit_stuffing=self.bit_stuffing)

    def describe(self) -> str:
        """One-line human-readable summary."""
        stuffing = "worst-case stuffing" if self.bit_stuffing else "no stuffing"
        return (f"{self.name}: {self.bit_rate_bps / 1000:g} kbit/s, {stuffing}")

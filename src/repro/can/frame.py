"""CAN frame timing: lengths, overheads and bit stuffing.

The worst-case transmission time of a CAN frame is a key input to the
response-time analysis.  It depends on the frame format (11-bit standard or
29-bit extended identifier), the payload length (0..8 data bytes for
classical CAN) and on *bit stuffing*: the protocol inserts a stuff bit after
every five consecutive equal bits in the stuffed region of the frame, so a
pathological payload inflates the frame.

The formulas follow Davis, Burns, Bril, Lukkien, "Controller Area Network
(CAN) schedulability analysis: Refuted, revisited and revised" (2007), which
is the corrected version of the original Tindell analysis cited by the paper.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache


class CanFrameFormat(str, Enum):
    """CAN frame identifier format."""

    STANDARD = "standard"   # 11-bit identifier (CAN 2.0A)
    EXTENDED = "extended"   # 29-bit identifier (CAN 2.0B)


# Number of bits in the frame outside the data field that are subject to bit
# stuffing (SOF, identifier, control field, CRC) -- the canonical "g" value.
_STUFFED_OVERHEAD_BITS = {
    CanFrameFormat.STANDARD: 34,
    CanFrameFormat.EXTENDED: 54,
}

# Bits not subject to stuffing: CRC delimiter, ACK slot + delimiter, EOF (7)
# plus the 3-bit interframe space that separates consecutive frames.
_UNSTUFFED_TRAILER_BITS = 13

MAX_PAYLOAD_BYTES = 8


def _validate_payload(payload_bytes: int) -> None:
    if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise ValueError(
            f"classical CAN payload must be 0..{MAX_PAYLOAD_BYTES} bytes, "
            f"got {payload_bytes}")


def frame_bits_without_stuffing(
    payload_bytes: int,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
) -> int:
    """Number of bits of a frame before any stuff bits are inserted.

    Includes the 3-bit interframe space so that consecutive frames can be
    summed directly.
    """
    _validate_payload(payload_bytes)
    overhead = _STUFFED_OVERHEAD_BITS[CanFrameFormat(frame_format)]
    return overhead + 8 * payload_bytes + _UNSTUFFED_TRAILER_BITS


def max_stuff_bits(
    payload_bytes: int,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
) -> int:
    """Worst-case number of stuff bits for a frame.

    Only the ``g + 8 * s`` bits of SOF/ID/control/data/CRC are subject to
    stuffing; in the worst case one stuff bit is added per four original bits
    after the first (the stuffed bits themselves can participate in new
    stuff sequences), giving ``floor((g + 8 s - 1) / 4)``.
    """
    _validate_payload(payload_bytes)
    overhead = _STUFFED_OVERHEAD_BITS[CanFrameFormat(frame_format)]
    stuffable = overhead + 8 * payload_bytes
    return (stuffable - 1) // 4


@lru_cache(maxsize=None)
def worst_case_frame_bits(
    payload_bytes: int,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
    bit_stuffing: bool = True,
) -> int:
    """Worst-case length of a frame in bits (including interframe space).

    Cached: the argument domain is tiny (9 payload lengths, 2 formats,
    stuffing on/off) and the what-if service rebuilds per-configuration
    transmission-time tables often enough for the lookups to matter.
    """
    bits = frame_bits_without_stuffing(payload_bytes, frame_format)
    if bit_stuffing:
        bits += max_stuff_bits(payload_bytes, frame_format)
    return bits


@lru_cache(maxsize=None)
def best_case_frame_bits(
    payload_bytes: int,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
) -> int:
    """Best-case length of a frame in bits (no stuff bits at all)."""
    return frame_bits_without_stuffing(payload_bytes, frame_format)


def worst_case_transmission_time(
    payload_bytes: int,
    bit_rate_bps: float,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
    bit_stuffing: bool = True,
) -> float:
    """Worst-case transmission time of a frame in milliseconds.

    Parameters
    ----------
    payload_bytes:
        Number of data bytes (0..8).
    bit_rate_bps:
        Bus bit rate in bits per second (e.g. ``500_000`` for the power-train
        bus of the case study).
    frame_format:
        Standard (11-bit) or extended (29-bit) identifier format.
    bit_stuffing:
        Whether to account for worst-case bit stuffing.  The paper's "worst
        case" experiments include it; the "best case" ones do not.
    """
    if bit_rate_bps <= 0:
        raise ValueError("bit_rate_bps must be positive")
    bits = worst_case_frame_bits(payload_bytes, frame_format, bit_stuffing)
    return bits / bit_rate_bps * 1000.0


def best_case_transmission_time(
    payload_bytes: int,
    bit_rate_bps: float,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
) -> float:
    """Best-case transmission time of a frame in milliseconds."""
    if bit_rate_bps <= 0:
        raise ValueError("bit_rate_bps must be positive")
    return best_case_frame_bits(payload_bytes, frame_format) / bit_rate_bps * 1000.0


def error_frame_bits(frame_format: CanFrameFormat = CanFrameFormat.STANDARD) -> int:
    """Worst-case length of an error frame plus recovery, in bits.

    An error flag (6..12 bits) plus the error delimiter (8 bits) plus the
    intermission (3 bits) and the superposition of error flags from other
    nodes: the standard bound used in CAN error analysis is 31 bits.
    """
    del frame_format  # identical for both formats
    return 31


def error_recovery_overhead(
    bit_rate_bps: float,
    frame_format: CanFrameFormat = CanFrameFormat.STANDARD,
) -> float:
    """Worst-case time consumed by one error signalling sequence (ms).

    The retransmission of the corrupted frame itself is accounted for
    separately by the error models (it depends on which frame was hit).
    """
    if bit_rate_bps <= 0:
        raise ValueError("bit_rate_bps must be positive")
    return error_frame_bits(frame_format) / bit_rate_bps * 1000.0

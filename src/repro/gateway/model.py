"""Gateway routes, queues and their worst-case forwarding behaviour.

A gateway receives a message on one bus, optionally re-packs its signals, and
queues a corresponding message on another bus.  Timing-wise each route adds

* the forwarding-task latency (periodic polling or event-driven copy);
* queuing delay when several routes share one output queue;
* additional jitter equal to the width of the forwarding-latency interval.

The analysis here is deliberately conservative and closed-form so that it can
run inside the compositional fixed-point of :mod:`repro.core`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from repro.events.model import EventModel
from repro.events.operations import add_jitter, output_event_model


class ForwardingPolicy(str, Enum):
    """How the gateway transfers a received message to the output queue."""

    #: A periodic gateway task polls the receive buffers every ``period``.
    PERIODIC_POLLING = "periodic-polling"

    #: The receive interrupt copies the frame immediately (event-driven).
    EVENT_DRIVEN = "event-driven"


@dataclass(frozen=True)
class GatewayRoute:
    """One forwarding relation of a gateway."""

    source_message: str
    destination_message: str
    source_bus: str
    destination_bus: str
    queue: str = "default"

    def describe(self) -> str:
        """One-line summary used in reports."""
        return (f"{self.source_message}@{self.source_bus} -> "
                f"{self.destination_message}@{self.destination_bus} "
                f"[queue {self.queue}]")


@dataclass(frozen=True)
class RouteLatency:
    """Worst-case forwarding behaviour of one route."""

    route: GatewayRoute
    best_case: float
    worst_case: float
    queue_length_bound: int

    @property
    def added_jitter(self) -> float:
        """Jitter the gateway adds to the forwarded stream."""
        return self.worst_case - self.best_case


@dataclass
class GatewayModel:
    """A gateway ECU: routes plus forwarding configuration.

    Attributes
    ----------
    name:
        Gateway ECU name (matches the K-Matrix sender of forwarded messages).
    routes:
        Forwarding relations.
    policy:
        Polling or event-driven forwarding.
    polling_period:
        Period of the forwarding task (ms); only used for periodic polling.
    copy_time:
        CPU time to copy one frame between controllers (ms).
    queue_capacities:
        Maximum number of frames each named output queue can hold; used to
        check the queue-length bounds computed by the analysis.
    """

    name: str
    routes: list[GatewayRoute] = field(default_factory=list)
    policy: ForwardingPolicy = ForwardingPolicy.PERIODIC_POLLING
    polling_period: float = 5.0
    copy_time: float = 0.05
    queue_capacities: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.polling_period <= 0:
            raise ValueError("polling_period must be positive")
        if self.copy_time < 0:
            raise ValueError("copy_time must be non-negative")
        destinations = [route.destination_message for route in self.routes]
        if len(destinations) != len(set(destinations)):
            raise ValueError(
                f"gateway {self.name!r}: a destination message appears in "
                "more than one route")

    def routes_through_queue(self, queue: str) -> list[GatewayRoute]:
        """All routes sharing the given output queue."""
        return [route for route in self.routes if route.queue == queue]

    def route_for_destination(self, destination_message: str) -> GatewayRoute:
        """The route producing the given destination message."""
        for route in self.routes:
            if route.destination_message == destination_message:
                return route
        raise KeyError(destination_message)

    def add_route(self, route: GatewayRoute) -> None:
        """Add a forwarding relation, re-validating the gateway."""
        self.routes.append(route)
        try:
            self.__post_init__()
        except ValueError:
            self.routes.pop()
            raise

    def analysis_key(self) -> tuple:
        """Hashable fingerprint of every forwarding-relevant input.

        Two gateways with equal keys forward identically.  The model itself
        is mutable (``routes`` is a list, ``add_route`` edits in place), so
        any cache over gateway behaviour must key on this fingerprint --
        never on object identity, which survives in-place route edits.
        """
        return (
            self.name,
            tuple(self.routes),
            self.policy,
            self.polling_period,
            self.copy_time,
            tuple(sorted(self.queue_capacities.items())),
        )


class GatewayAnalysis:
    """Worst-case forwarding latency, jitter and queue bounds of a gateway."""

    def __init__(self, gateway: GatewayModel) -> None:
        self.gateway = gateway

    def _forwarding_interval(self, pending_frames: int) -> tuple[float, float]:
        """Best/worst-case latency to move one frame into the output queue."""
        copy = self.gateway.copy_time
        if self.gateway.policy == ForwardingPolicy.EVENT_DRIVEN:
            best = copy
            worst = copy * max(pending_frames, 1)
            return best, worst
        # Periodic polling: the frame may arrive right after a polling point
        # and then waits a full period; the poller copies all pending frames.
        best = copy
        worst = self.gateway.polling_period + copy * max(pending_frames, 1)
        return best, worst

    def route_latency(
        self,
        route: GatewayRoute,
        arrival_models: Mapping[str, EventModel],
    ) -> RouteLatency:
        """Forwarding latency of one route given arrival models at the gateway.

        Parameters
        ----------
        route:
            The route to analyse.
        arrival_models:
            Event models of the *source* messages as they arrive at the
            gateway (typically the bus-analysis output models), keyed by
            source message name.
        """
        shared = self.gateway.routes_through_queue(route.queue)
        # Worst case: every route of the shared queue has a frame pending.
        pending = len(shared)
        best, worst = self._forwarding_interval(pending)

        # Queue length bound: frames that can pile up between two services.
        service_interval = (self.gateway.polling_period
                            if self.gateway.policy == ForwardingPolicy.PERIODIC_POLLING
                            else self.gateway.copy_time * pending)
        queue_bound = 0
        for other in shared:
            model = arrival_models.get(other.source_message)
            if model is None:
                queue_bound += 1
            else:
                queue_bound += model.eta_plus(service_interval)
        capacity = self.gateway.queue_capacities.get(route.queue)
        if capacity is not None and queue_bound > capacity:
            # Overflow is a correctness problem; surface it as unbounded
            # latency so the system-level analysis flags the route.
            worst = math.inf
        return RouteLatency(route=route, best_case=best, worst_case=worst,
                            queue_length_bound=queue_bound)

    def output_event_models(
        self,
        arrival_models: Mapping[str, EventModel],
        min_output_distance: float = 0.0,
    ) -> dict[str, EventModel]:
        """Event models of the forwarded (destination) messages.

        Each forwarded stream keeps the period of its source stream and gains
        the forwarding-latency interval as additional jitter.  Routes whose
        source model is unknown are skipped (the caller falls back to the
        K-Matrix parameters).
        """
        models: dict[str, EventModel] = {}
        for route in self.gateway.routes:
            source_model = arrival_models.get(route.source_message)
            if source_model is None:
                continue
            latency = self.route_latency(route, arrival_models)
            if math.isinf(latency.worst_case):
                # Queue overflow: represent as a very bursty stream so the
                # downstream analysis sees the overload instead of silently
                # using optimistic numbers.
                models[route.destination_message] = add_jitter(
                    source_model, source_model.period * 10.0,
                    min_distance=min_output_distance)
                continue
            models[route.destination_message] = output_event_model(
                input_model=source_model,
                best_case_response=latency.best_case,
                worst_case_response=latency.worst_case,
                min_output_distance=min_output_distance,
            )
        return models

    def analyze_all(
        self,
        arrival_models: Mapping[str, EventModel],
    ) -> dict[str, RouteLatency]:
        """Latency results for every route, keyed by destination message."""
        return {
            route.destination_message: self.route_latency(route, arrival_models)
            for route in self.gateway.routes
        }

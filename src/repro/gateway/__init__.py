"""Gateway substrate: store-and-forward routing between buses.

The case-study bus contains gateways, and Section 5 mentions "gatewaying
strategies ... usually under the control of the OEMs" with tunable queue
configurations.  This package models a gateway as a set of routes, each
forwarding a message from a source bus to a destination bus through a queue
served by a forwarding task; it provides worst-case forwarding latency and
jitter, queue-length bounds, and the output event models the compositional
engine injects into the destination bus analysis.
"""

from repro.gateway.model import (
    ForwardingPolicy,
    GatewayAnalysis,
    GatewayModel,
    GatewayRoute,
    RouteLatency,
)

__all__ = [
    "ForwardingPolicy",
    "GatewayModel",
    "GatewayRoute",
    "GatewayAnalysis",
    "RouteLatency",
]

"""Windowed time-series history for selected metrics.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "what happened since
boot" -- monotone totals and gauge levels.  The conformance monitor (PR 10)
needs the other observability axis: "what happened in the last N windows", so
an alert rule like ``observed_slack_ms < 0.1 * deadline for 3 windows`` has
something to evaluate and the ``metrics`` op can serve recent trendlines
instead of lifetime aggregates only.

:class:`MetricsHistory` keeps one bounded :class:`SeriesRing` per
``(series, labels)`` pair.  Recording is O(1), memory is strictly bounded by
``capacity`` points per series, and snapshots render label sets into the same
``name{label="value"}`` form the registry uses so both layers read alike.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable

__all__ = ["MetricsHistory", "SeriesPoint", "SeriesRing"]

# One point per window is cheap (two floats); 128 windows of a 100 ms
# monitor window is ~13 s of lookback per series, plenty for "for N
# windows" alert predicates while staying trivially bounded.
DEFAULT_HISTORY_WINDOWS = 128


class SeriesPoint(tuple):
    """A ``(window, value)`` pair; a plain tuple with named accessors."""

    __slots__ = ()

    def __new__(cls, window: int, value: float) -> "SeriesPoint":
        return tuple.__new__(cls, (int(window), float(value)))

    @property
    def window(self) -> int:
        return self[0]

    @property
    def value(self) -> float:
        return self[1]


class SeriesRing:
    """Fixed-capacity ring of :class:`SeriesPoint` entries, oldest evicted."""

    __slots__ = ("_points",)

    def __init__(self, capacity: int = DEFAULT_HISTORY_WINDOWS) -> None:
        if capacity < 1:
            raise ValueError("history capacity must be >= 1")
        self._points: deque[SeriesPoint] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def append(self, window: int, value: float) -> None:
        self._points.append(SeriesPoint(window, value))

    def last(self, n: int | None = None) -> list[SeriesPoint]:
        """The most recent ``n`` points, oldest first (all when ``None``)."""
        points = list(self._points)
        if n is not None and n >= 0:
            points = points[len(points) - min(n, len(points)) :]
        return points

    def __len__(self) -> int:
        return len(self._points)


def _series_key(name: str, labels: dict[str, object]) -> tuple[str, tuple[tuple[str, str], ...]]:
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(key: tuple[str, tuple[tuple[str, str], ...]]) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsHistory:
    """Thread-safe windowed history keyed like registry instruments.

    ``record`` appends one point to the ``(series, labels)`` ring; rings are
    created on first use.  Readers get copies, so snapshots are safe to
    serialise while the monitor keeps recording.
    """

    def __init__(self, capacity: int = DEFAULT_HISTORY_WINDOWS) -> None:
        if capacity < 1:
            raise ValueError("history capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], SeriesRing] = {}

    def record(self, window: int, name: str, value: float, **labels: object) -> None:
        """Append ``value`` for window index ``window`` to one series."""
        key = _series_key(name, labels)
        with self._lock:
            ring = self._series.get(key)
            if ring is None:
                ring = self._series[key] = SeriesRing(self.capacity)
            ring.append(window, value)

    def series(self, name: str, last: int | None = None, **labels: object) -> list[SeriesPoint]:
        """Points of one series, oldest first (empty if never recorded)."""
        key = _series_key(name, labels)
        with self._lock:
            ring = self._series.get(key)
            return ring.last(last) if ring is not None else []

    def latest(self, name: str, **labels: object) -> float | None:
        """Most recent value of one series, or ``None`` if never recorded."""
        points = self.series(name, last=1, **labels)
        return points[-1].value if points else None

    def window_values(self, name: str, last: int, **labels: object) -> list[float]:
        """The values (without window indices) of the last ``last`` points."""
        return [point.value for point in self.series(name, last=last, **labels)]

    def names(self) -> list[str]:
        """Rendered series names, sorted."""
        with self._lock:
            return sorted(_render_key(key) for key in self._series)

    def snapshot(self, last: int | None = None) -> dict[str, list[list[float]]]:
        """JSON-shaped view: rendered name -> ``[[window, value], ...]``."""
        with self._lock:
            entries: Iterable = sorted(self._series.items())
            return {
                _render_key(key): [[point.window, point.value] for point in ring.last(last)]
                for key, ring in entries
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

"""Observability substrate: metrics registry, request tracing, slow log.

Dependency-free (stdlib only) so every layer -- including the analysis
kernels -- may import from here without cycles.  See ``metrics.py`` for
the instrument model and ``tracing.py`` for span/retention semantics.
"""

from repro.obs.history import (
    DEFAULT_HISTORY_WINDOWS,
    MetricsHistory,
    SeriesPoint,
    SeriesRing,
)
from repro.obs.metrics import (
    ITERATION_BUCKETS,
    LATENCY_BUCKETS_MS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import (
    DEFAULT_TRACE_RING,
    SlowQueryLog,
    Span,
    Trace,
    TraceRing,
    new_trace_id,
)

__all__ = [
    "Counter",
    "DEFAULT_HISTORY_WINDOWS",
    "DEFAULT_TRACE_RING",
    "Gauge",
    "Histogram",
    "ITERATION_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "MetricsHistory",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "SeriesPoint",
    "SeriesRing",
    "SlowQueryLog",
    "Span",
    "Trace",
    "TraceRing",
    "new_trace_id",
]

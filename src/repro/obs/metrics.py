"""Dependency-free metrics: counters, gauges and fixed-bucket histograms.

The serving tier needs to answer "is the warm-start path winning?",
"which cache is thrashing?" and "how long does a ``query`` take at p99?"
without a debugger attached.  This module is the substrate: a
:class:`MetricsRegistry` handing out named, optionally labelled metric
instruments that are

- **thread-safe** -- every instrument guards its state with its own
  lock, and the registry itself is locked only on instrument creation
  and snapshot/reset, never on the hot update path;
- **snapshot-able** -- :meth:`MetricsRegistry.snapshot` returns a plain
  nested dict (JSON-ready, suitable for the daemon's ``metrics`` op) and
  :meth:`MetricsRegistry.render_prometheus` emits the text exposition
  format so a scrape endpoint is a one-liner;
- **resettable** -- :meth:`MetricsRegistry.reset` zeroes every
  instrument in place without invalidating handles held by
  instrumented code;
- **always-on-cheap** -- an update is one lock acquire plus an int/float
  add (histograms add a bisect over a dozen bucket bounds).  Hot loops
  never call into the registry; they accumulate plain ints locally and
  publish once per solve/request (see ``analysis/vector.py`` and
  ``service/session.py``).

Instruments are keyed by ``(name, sorted(labels))`` so
``registry.counter("daemon_requests_total", op="query")`` always returns
the same object; callers on hot paths should fetch the instrument once
and keep the reference.

Only the stdlib is used; nothing here imports numpy or any other repro
layer, so every layer (including ``analysis/``) may depend on it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ITERATION_BUCKETS",
    "LATENCY_BUCKETS_MS",
    "SIZE_BUCKETS",
]

# Upper bounds (inclusive) of the fixed histogram buckets; one implicit
# +inf bucket is appended.  Latency in milliseconds spanning 50 us to
# 10 s, iteration counts spanning single fixed-point rounds to the
# divergence cap, set sizes spanning one message to large batches.
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)
ITERATION_BUCKETS: tuple[float, ...] = (
    1.0,
    2.0,
    3.0,
    5.0,
    8.0,
    13.0,
    21.0,
    34.0,
    55.0,
    89.0,
    144.0,
    377.0,
    1000.0,
    10000.0,
    100000.0,
)
SIZE_BUCKETS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


def _label_suffix(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count.  ``inc`` is thread-safe."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (queue depth, inflight count)."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram tracking count, sum and per-bucket counts.

    Buckets are inclusive upper bounds; one +inf overflow bucket is
    always present.  ``observe`` costs one lock plus a binary search
    over the (small, fixed) bound list -- cheap enough for per-request
    use, too expensive for per-iteration use (accumulate locally and
    observe totals instead).
    """

    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_count", "_sum")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS_MS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        """``{"count", "sum", "buckets": [[upper_bound, count], ...]}``.

        The overflow bucket is reported with ``"+Inf"`` as its bound.
        Bucket counts are per-bucket (not cumulative); the Prometheus
        exposition converts to cumulative form.
        """
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        buckets: list[list] = [[bound, counts[i]] for i, bound in enumerate(self.bounds)]
        buckets.append(["+Inf", counts[-1]])
        return {"count": total, "sum": acc, "buckets": buckets}

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0


class MetricsRegistry:
    """Get-or-create factory and snapshot point for all instruments.

    One registry per daemon; the same instance is threaded into the
    session pool, sessions, job queue and solver publication sites so a
    single ``metrics`` request sees the whole serving stack.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ValueError(f"metric {name!r} already registered as {type(metric).__name__}")
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS_MS,
        **labels: str,
    ) -> Histogram:
        metric = self._get(Histogram, name, labels, buckets=buckets)
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(f"histogram {name!r} already registered with other buckets")
        return metric

    def _items(self) -> Iterator[tuple[str, object]]:
        with self._lock:
            entries = sorted(self._metrics.items())
        for (name, labels), metric in entries:
            yield name + _label_suffix(labels), metric

    def snapshot(self) -> dict:
        """A JSON-ready nested dict of every instrument's current state.

        ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: {"count", "sum", "buckets"}}}`` with label
        sets rendered into the name (``daemon_op_ms{op="query"}``).
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for full_name, metric in self._items():
            if isinstance(metric, Counter):
                out["counters"][full_name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][full_name] = metric.value
            elif isinstance(metric, Histogram):
                out["histograms"][full_name] = metric.snapshot()
        return out

    def value(self, name: str, **labels: str) -> float | None:
        """The current value of a counter/gauge, or ``None`` if absent."""
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value

    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Histogram buckets are emitted cumulatively with ``le`` labels
        plus ``_count`` and ``_sum`` series, counters as ``counter``,
        gauges as ``gauge``.
        """
        lines: list[str] = []
        seen_types: set[str] = set()

        def type_line(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for _, metric in self._items():
            name = metric.name
            suffix = _label_suffix(metric.labels)
            if isinstance(metric, Counter):
                type_line(name, "counter")
                lines.append(f"{name}{suffix} {metric.value:g}")
            elif isinstance(metric, Gauge):
                type_line(name, "gauge")
                lines.append(f"{name}{suffix} {metric.value:g}")
            elif isinstance(metric, Histogram):
                type_line(name, "histogram")
                snap = metric.snapshot()
                base = list(metric.labels)
                cumulative = 0
                for bound, count in snap["buckets"]:
                    cumulative += count
                    le = "+Inf" if bound == "+Inf" else f"{bound:g}"
                    bucket_suffix = _label_suffix(tuple(base + [("le", le)]))
                    lines.append(f"{name}_bucket{bucket_suffix} {cumulative}")
                lines.append(f"{name}_count{suffix} {snap['count']}")
                lines.append(f"{name}_sum{suffix} {snap['sum']:g}")
        return "\n".join(lines) + "\n"

"""Request tracing: trace ids, span trees, slow-trace retention, slow log.

Every protocol request handled by the daemon gets a :class:`Trace`: a
root span for the whole request plus child spans for the stages

    decode -> admission -> queue_wait -> session_plan -> solve -> encode

recorded by the transport (``server/tcp.py``), the daemon's admission
block and the analysis session.  The trace id is propagated from the
client's ``trace_id`` field when present, otherwise generated, and is
echoed on traced responses so client-side and daemon-side records join.

Retention is "slowest N": :class:`TraceRing` is a bounded min-heap that
keeps the N slowest finished traces seen so far (the daemon's ``traces``
op serves them, slowest first).  :class:`SlowQueryLog` additionally
emits a structured one-line stdlib-``logging`` record for any trace
over a threshold, rate-limited so a pathological workload cannot flood
the log; it is off by default and enabled by ``--slow-query-ms``.

Cost model: a trace is a plain object append per stage plus two
``perf_counter`` calls per span -- around a microsecond per stage, paid
once per request, never per fixed-point iteration.  The
``obs_overhead_parity`` scenario in ``benchmarks/perf/run_bench.py``
gates this at parity with the uninstrumented path.
"""

from __future__ import annotations

import heapq
import itertools
import logging
import threading
import time
import uuid

__all__ = [
    "DEFAULT_TRACE_RING",
    "SlowQueryLog",
    "Span",
    "Trace",
    "TraceRing",
    "new_trace_id",
]

DEFAULT_TRACE_RING = 64

logger = logging.getLogger("repro.slowlog")


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed stage.  ``start_ms`` is the offset from trace start."""

    __slots__ = ("name", "start_ms", "duration_ms", "children", "_t0")

    def __init__(self, name: str, start_ms: float) -> None:
        self.name = name
        self.start_ms = start_ms
        self.duration_ms = 0.0
        self.children: list[Span] = []
        self._t0 = 0.0

    def to_json(self) -> dict:
        out: dict = {
            "name": self.name,
            "start_ms": round(self.start_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.children:
            out["children"] = [child.to_json() for child in self.children]
        return out


class Trace:
    """A span tree for one request, safe to touch from multiple threads.

    Spans are explicit (no implicit context stack) because one request
    crosses threads: the transport decodes on the connection thread,
    batch steps solve on workers.  Usage::

        trace = Trace(op="query", target="powertrain")
        span = trace.begin("solve")
        ...
        trace.end(span)
        trace.finish()
    """

    __slots__ = (
        "trace_id",
        "op",
        "target",
        "spans",
        "duration_ms",
        "inline",
        "_lock",
        "_start",
        "started_at",
    )

    def __init__(
        self,
        op: str,
        target: str | None = None,
        trace_id: str | None = None,
        inline: bool = False,
    ) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.op = op
        self.target = target
        self.spans: list[Span] = []
        self.duration_ms = 0.0
        self.inline = inline
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        self.started_at = time.time()

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._start) * 1000.0

    def backdate(self, duration_ms: float) -> None:
        """Shift the trace's start ``duration_ms`` earlier.

        The transport decodes the request line *before* the daemon can
        construct the trace; backdating by the decode time makes the
        root interval cover that stage, so the stage durations always
        fit inside the root total.
        """
        self._start -= duration_ms / 1000.0
        self.started_at -= duration_ms / 1000.0

    def begin(self, name: str, parent: Span | None = None) -> Span:
        span = Span(name, self._now_ms())
        span._t0 = time.perf_counter()
        with self._lock:
            (parent.children if parent is not None else self.spans).append(span)
        return span

    def end(self, span: Span) -> float:
        span.duration_ms = (time.perf_counter() - span._t0) * 1000.0
        return span.duration_ms

    def record(self, name: str, duration_ms: float, parent: Span | None = None) -> Span:
        """Append an externally timed stage ending now."""
        span = Span(name, max(0.0, self._now_ms() - duration_ms))
        span.duration_ms = duration_ms
        with self._lock:
            (parent.children if parent is not None else self.spans).append(span)
        return span

    def extend(self, name: str, duration_ms: float) -> Span:
        """Add time to the top-level span ``name``, creating it if absent.

        The finished total (``duration_ms``) grows by the same amount:
        the transport uses this to fold its line-encode time into an
        already-finalized trace, so the root still covers every stage.
        """
        span = None
        with self._lock:
            for candidate in self.spans:
                if candidate.name == name:
                    candidate.duration_ms += duration_ms
                    span = candidate
                    break
            self.duration_ms += duration_ms
        if span is None:
            span = self.record(name, duration_ms)
        return span

    def finish(self) -> float:
        """Close the root span; returns total duration in milliseconds."""
        self.duration_ms = self._now_ms()
        return self.duration_ms

    def stage_ms(self, name: str) -> float | None:
        with self._lock:
            for span in self.spans:
                if span.name == name:
                    return span.duration_ms
        return None

    def to_json(self) -> dict:
        with self._lock:
            spans = [span.to_json() for span in self.spans]
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "target": self.target,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_ms, 6),
            "spans": spans,
        }


class TraceRing:
    """Bounded retention of the slowest finished traces.

    A min-heap keyed by duration: while under capacity every trace is
    kept; at capacity a new trace replaces the fastest retained one iff
    it is slower.  ``snapshot`` renders slowest-first.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_RING) -> None:
        if capacity < 0:
            raise ValueError(f"trace ring capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, Trace]] = []
        self._seq = itertools.count()
        self.seen = 0
        self.evicted = 0

    def add(self, trace: Trace) -> None:
        if self.capacity == 0:
            return
        entry = (trace.duration_ms, next(self._seq), trace)
        with self._lock:
            self.seen += 1
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif entry[0] > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)
                self.evicted += 1
            else:
                self.evicted += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def snapshot(self, limit: int | None = None) -> list[dict]:
        """JSON span trees of the retained traces, slowest first."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        if limit is not None:
            entries = entries[: max(0, limit)]
        return [trace.to_json() for _, _, trace in entries]

    def reset(self) -> None:
        with self._lock:
            self._heap.clear()
            self.seen = 0
            self.evicted = 0


class SlowQueryLog:
    """Structured one-line records for traces over a threshold.

    Disabled when ``threshold_ms`` is ``None`` (the default) -- the
    check is then a single ``is None`` compare per request.  When
    enabled, at most one record per ``min_interval_s`` is emitted;
    suppressed records are counted and the count is attached to the
    next emitted line so nothing disappears silently.
    """

    def __init__(
        self,
        threshold_ms: float | None = None,
        min_interval_s: float = 1.0,
        log: logging.Logger | None = None,
    ) -> None:
        self.threshold_ms = threshold_ms
        self.min_interval_s = min_interval_s
        self.logger = log if log is not None else logger
        self._lock = threading.Lock()
        self._last_emit = 0.0
        self._suppressed = 0
        self.emitted = 0

    def maybe_log(self, trace: Trace, fingerprint: str | None = None) -> bool:
        """Log ``trace`` if it crossed the threshold; returns True if logged."""
        if self.threshold_ms is None or trace.duration_ms < self.threshold_ms:
            return False
        now = time.monotonic()
        with self._lock:
            if now - self._last_emit < self.min_interval_s:
                self._suppressed += 1
                return False
            self._last_emit = now
            suppressed, self._suppressed = self._suppressed, 0
            self.emitted += 1
        stages = " ".join(f"{span.name}={span.duration_ms:.3f}" for span in trace.spans)
        self.logger.warning(
            "slow-query trace_id=%s op=%s target=%s fingerprint=%s "
            "duration_ms=%.3f suppressed=%d %s",
            trace.trace_id,
            trace.op,
            trace.target,
            fingerprint,
            trace.duration_ms,
            suppressed,
            stages,
        )
        return True

"""SPEA2-style multi-objective genetic optimization of CAN identifiers.

The paper's optimizer (ref [10], Zitzler/Laumanns/Thiele's SPEA2) searches
identifier permutations, evaluating each candidate with full what-if analysis
across several scenarios and keeping an archive of Pareto-optimal
configurations.  This module implements the same scheme:

* individuals are permutations assigning the existing identifier pool to the
  messages (order-based encoding);
* fitness follows SPEA2: strength / raw fitness from Pareto dominance plus a
  k-nearest-neighbour density term;
* variation uses order crossover (OX) and swap/insertion mutation;
* the initial population is seeded with the deterministic baselines
  (original, rate-monotonic, deadline-monotonic) so the GA never does worse
  than the best known heuristic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.can.kmatrix import KMatrix
from repro.optimize.assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    rate_monotonic_assignment,
)
from repro.optimize.objectives import (
    AnalysisScenario,
    ConfigurationEvaluation,
    EvaluationContext,
    evaluate_configuration_with_context,
)
from repro.parallel import parallel_map, resolve_mode


def _evaluate_order_job(job: tuple) -> tuple[ConfigurationEvaluation,
                                             EvaluationContext]:
    """Evaluate one candidate order from a fully picklable job tuple.

    Top-level on purpose: ``REPRO_PARALLEL=process`` pools pickle the
    callable and every argument, which the closure-based population
    evaluation cannot satisfy.  Worker processes share no session cache, so
    each candidate is evaluated directly (warm starts only affect speed,
    never results -- all modes return bit-identical evaluations).
    """
    (kmatrix, scenarios, order, id_pool, parent_context, threshold,
     backend) = job
    mapping = {name: can_id for name, can_id in zip(order, id_pool)}
    return evaluate_configuration_with_context(
        kmatrix.with_priorities(mapping), scenarios,
        sensitivity_threshold=threshold, warm_start=parent_context,
        backend=backend)


@dataclass(frozen=True)
class GeneticOptimizerConfig:
    """Hyper-parameters of the SPEA2-style search.

    ``analysis_backend`` selects the optimised analysis kernel (default,
    picking its ``"numpy"``/``"scalar"`` fixed-point backend automatically;
    name either explicitly to pin it) or the retained naive path
    (``"reference"``); the latter exists for the equivalence tests and the
    seed-vs-kernel benchmark, which assert that all backends return
    identical objective values.
    """

    population_size: int = 24
    archive_size: int = 12
    generations: int = 20
    crossover_probability: float = 0.9
    mutation_probability: float = 0.3
    mutation_swaps: int = 2
    seed: int = 42
    sensitivity_threshold: float = 0.10
    seed_with_audsley: bool = True
    analysis_backend: str = "kernel"

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.archive_size < 1:
            raise ValueError("archive_size must be at least 1")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        for name in ("crossover_probability", "mutation_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.analysis_backend not in ("kernel", "reference",
                                         "numpy", "scalar"):
            raise ValueError(
                f"unknown analysis backend {self.analysis_backend!r}")


@dataclass
class _Individual:
    """One candidate: an ordering of message names (priority order).

    ``parent_order`` identifies the already evaluated candidate this one was
    derived from; its evaluation context warm-starts this candidate's
    analysis (see :mod:`repro.optimize.objectives`).
    """

    order: tuple[str, ...]
    evaluation: ConfigurationEvaluation | None = None
    fitness: float = math.inf
    parent_order: tuple[str, ...] | None = None


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one optimization run."""

    best_kmatrix: KMatrix
    best_evaluation: ConfigurationEvaluation
    original_evaluation: ConfigurationEvaluation
    generations_run: int
    evaluations: int
    archive: tuple[ConfigurationEvaluation, ...] = ()
    history: tuple[float, ...] = ()

    @property
    def improved(self) -> bool:
        """Whether the optimizer strictly reduced total message loss."""
        return (self.best_evaluation.lost_messages
                < self.original_evaluation.lost_messages)

    def describe(self) -> str:
        """Short textual summary of the run."""
        return (f"GA: {self.original_evaluation.lost_messages} -> "
                f"{self.best_evaluation.lost_messages} lost messages over "
                f"{self.generations_run} generations "
                f"({self.evaluations} analyses)")


def optimize_priorities(
    kmatrix: KMatrix,
    scenarios: Sequence[AnalysisScenario],
    config: GeneticOptimizerConfig | None = None,
) -> OptimizationResult:
    """Search for an identifier assignment with less loss and more robustness.

    Parameters
    ----------
    kmatrix:
        The original communication matrix (its identifier pool is reused).
    scenarios:
        What-if scenarios the candidates are evaluated against, e.g.
        :func:`repro.optimize.objectives.paper_scenarios`.
    config:
        GA hyper-parameters; the defaults complete in seconds on the
        case-study matrix while still improving on the heuristics.
    """
    config = config or GeneticOptimizerConfig()
    rng = random.Random(config.seed)
    id_pool = sorted(message.can_id for message in kmatrix)
    names = [message.name for message in kmatrix]
    evaluations = 0
    cache: dict[tuple[str, ...],
                tuple[ConfigurationEvaluation, EvaluationContext]] = {}

    # Candidate evaluations of the kernel backend run as PriorityDelta
    # queries through cached-kernel sessions: messages whose higher-priority
    # set a mutation left untouched reuse the parent's fixed point outright,
    # demoted messages warm-start from it, promoted ones go cold -- the
    # incremental per-candidate re-analysis, bit-identical to the direct
    # path (the reference backend keeps using it for the equivalence tests).
    evaluator = None
    if config.analysis_backend != "reference":
        from repro.service.evaluation import SessionEvaluator
        evaluator = SessionEvaluator(
            kmatrix, scenarios,
            sensitivity_threshold=config.sensitivity_threshold,
            backend=(None if config.analysis_backend == "kernel"
                     else config.analysis_backend))

    def matrix_for(order: Sequence[str]) -> KMatrix:
        mapping = {name: can_id for name, can_id in zip(order, id_pool)}
        return kmatrix.with_priorities(mapping)

    def evaluate_one(
        order: tuple[str, ...],
        parent_order: tuple[str, ...] | None = None,
    ) -> tuple[ConfigurationEvaluation, EvaluationContext]:
        parent_context = None
        if parent_order is not None:
            parent_entry = cache.get(parent_order)
            if parent_entry is not None:
                parent_context = parent_entry[1]
        if evaluator is not None:
            return evaluator.evaluate(order, warm_start=parent_context)
        return evaluate_configuration_with_context(
            matrix_for(order), scenarios,
            sensitivity_threshold=config.sensitivity_threshold,
            warm_start=parent_context,
            backend=config.analysis_backend)

    def evaluate(order: tuple[str, ...]) -> ConfigurationEvaluation:
        nonlocal evaluations
        if order not in cache:
            evaluations += 1
            cache[order] = evaluate_one(order)
        return cache[order][0]

    def evaluate_population(individuals: Sequence[_Individual]) -> None:
        """Evaluate all candidates, sharing the cache and running uncached
        ones through :func:`repro.parallel.parallel_map` (GA candidates are
        independent; results merge in population order, deterministically).

        In ``process`` mode the work ships as picklable job tuples to the
        top-level :func:`_evaluate_order_job`; other modes evaluate through
        the shared session cache in this process.
        """
        nonlocal evaluations
        pending: list[_Individual] = []
        seen: set[tuple[str, ...]] = set()
        for individual in individuals:
            if individual.order not in cache and individual.order not in seen:
                seen.add(individual.order)
                pending.append(individual)
        mode = resolve_mode("auto", len(pending))
        if mode == "process":
            jobs = []
            for individual in pending:
                parent_entry = (cache.get(individual.parent_order)
                                if individual.parent_order else None)
                jobs.append((
                    kmatrix, tuple(scenarios), individual.order,
                    tuple(id_pool),
                    parent_entry[1] if parent_entry else None,
                    config.sensitivity_threshold, config.analysis_backend))
            outcomes = parallel_map(_evaluate_order_job, jobs, mode="process")
        else:
            outcomes = parallel_map(
                lambda ind: evaluate_one(ind.order, ind.parent_order),
                pending, mode=mode)
        for individual, outcome in zip(pending, outcomes):
            cache[individual.order] = outcome
            evaluations += 1
        for individual in individuals:
            individual.evaluation = cache[individual.order][0]

    # --- seed population -------------------------------------------------
    # Besides the original assignment and the monotonic heuristics, the
    # population is seeded with Audsley's optimal assignment computed against
    # the tightest scenario: whenever *any* fixed-priority assignment is
    # feasible there, the GA starts from one and only has to improve
    # robustness, which mirrors how the paper's optimizer is configured.
    original_order = tuple(m.name for m in kmatrix.sorted_by_priority())
    seeds = [
        original_order,
        tuple(m.name for m in rate_monotonic_assignment(kmatrix)
              .sorted_by_priority()),
        tuple(m.name for m in deadline_monotonic_assignment(kmatrix)
              .sorted_by_priority()),
    ]
    if config.seed_with_audsley and scenarios:
        tightest = max(scenarios,
                       key=lambda s: (s.deadline_policy == "min-rearrival",
                                      s.assumed_jitter_fraction))
        opa_matrix, _feasible = audsley_assignment(kmatrix, tightest)
        seeds.append(tuple(
            m.name for m in opa_matrix.sorted_by_priority()))
    population: list[_Individual] = [_Individual(order=o) for o in seeds]
    while len(population) < config.population_size:
        shuffled = list(names)
        rng.shuffle(shuffled)
        population.append(_Individual(order=tuple(shuffled)))

    original_evaluation = evaluate(original_order)
    archive: list[_Individual] = []
    history: list[float] = []

    for generation in range(config.generations):
        evaluate_population(population)
        union = _dedupe(population + archive)
        _assign_spea2_fitness(union)
        archive = _environmental_selection(union, config.archive_size)
        best = min(archive, key=lambda ind: ind.evaluation.objectives())
        history.append(float(best.evaluation.lost_messages))

        # Early exit: nothing left to improve.
        if best.evaluation.lost_messages == 0 and generation >= 1:
            break

        mating_pool = [_tournament(archive if archive else union, rng)
                       for _ in range(config.population_size)]
        offspring: list[_Individual] = []
        for index in range(0, len(mating_pool), 2):
            parent_a = mating_pool[index]
            parent_b = mating_pool[(index + 1) % len(mating_pool)]
            if rng.random() < config.crossover_probability:
                child_order = _order_crossover(parent_a.order, parent_b.order, rng)
            else:
                child_order = parent_a.order
            if rng.random() < config.mutation_probability:
                child_order = _mutate(child_order, config.mutation_swaps, rng)
            offspring.append(_Individual(order=child_order,
                                         parent_order=parent_a.order))
            if len(offspring) >= config.population_size:
                break
        population = offspring

    for individual in archive:
        individual.evaluation = evaluate(individual.order)
    best = min(archive, key=lambda ind: ind.evaluation.objectives()) \
        if archive else min(population, key=lambda ind: evaluate(ind.order).objectives())
    best_evaluation = evaluate(best.order)

    # Never return something worse than the original configuration.
    if original_evaluation.objectives() <= best_evaluation.objectives():
        best_order, best_evaluation = original_order, original_evaluation
    else:
        best_order = best.order

    return OptimizationResult(
        best_kmatrix=matrix_for(best_order),
        best_evaluation=best_evaluation,
        original_evaluation=original_evaluation,
        generations_run=len(history),
        evaluations=evaluations,
        archive=tuple(ind.evaluation for ind in archive if ind.evaluation),
        history=tuple(history),
    )


# --------------------------------------------------------------------------- #
# SPEA2 machinery
# --------------------------------------------------------------------------- #
def _dedupe(individuals: Sequence[_Individual]) -> list[_Individual]:
    """Remove duplicate orderings, keeping the first occurrence."""
    seen: set[tuple[str, ...]] = set()
    unique = []
    for individual in individuals:
        if individual.order not in seen:
            seen.add(individual.order)
            unique.append(individual)
    return unique


def _assign_spea2_fitness(individuals: list[_Individual]) -> None:
    """SPEA2 fitness: strength-based raw fitness plus density."""
    n = len(individuals)
    strengths = [0] * n
    for i, a in enumerate(individuals):
        for j, b in enumerate(individuals):
            if i != j and a.evaluation.dominates(b.evaluation):
                strengths[i] += 1
    raw = [0.0] * n
    for i, a in enumerate(individuals):
        raw[i] = float(sum(
            strengths[j] for j, b in enumerate(individuals)
            if i != j and b.evaluation.dominates(a.evaluation)))
    k = max(int(math.sqrt(n)), 1)
    for i, a in enumerate(individuals):
        distances = sorted(
            _objective_distance(a.evaluation, b.evaluation)
            for j, b in enumerate(individuals) if i != j)
        kth = distances[min(k, len(distances)) - 1] if distances else 0.0
        density = 1.0 / (kth + 2.0)
        a.fitness = raw[i] + density


def _objective_distance(a: ConfigurationEvaluation,
                        b: ConfigurationEvaluation) -> float:
    """Euclidean distance in objective space."""
    return math.sqrt(sum(
        (x - y) ** 2 for x, y in zip(a.objectives(), b.objectives())))


def _environmental_selection(individuals: list[_Individual],
                             archive_size: int) -> list[_Individual]:
    """Keep non-dominated individuals, truncating/filling to archive size."""
    nondominated = [ind for ind in individuals if ind.fitness < 1.0]
    if len(nondominated) > archive_size:
        nondominated.sort(key=lambda ind: ind.fitness)
        return nondominated[:archive_size]
    if len(nondominated) < archive_size:
        dominated = sorted(
            (ind for ind in individuals if ind.fitness >= 1.0),
            key=lambda ind: ind.fitness)
        nondominated.extend(dominated[:archive_size - len(nondominated)])
    return nondominated


def _tournament(pool: Sequence[_Individual], rng: random.Random) -> _Individual:
    """Binary tournament selection on SPEA2 fitness (lower is better)."""
    a, b = rng.choice(pool), rng.choice(pool)
    return a if a.fitness <= b.fitness else b


def _order_crossover(parent_a: tuple[str, ...], parent_b: tuple[str, ...],
                     rng: random.Random) -> tuple[str, ...]:
    """Order crossover (OX): keep a slice of A, fill the rest in B's order."""
    size = len(parent_a)
    if size < 2:
        return parent_a
    start, end = sorted(rng.sample(range(size), 2))
    slice_a = parent_a[start:end + 1]
    fill = [name for name in parent_b if name not in slice_a]
    child = list(fill[:start]) + list(slice_a) + list(fill[start:])
    return tuple(child)


def _mutate(order: tuple[str, ...], swaps: int, rng: random.Random,
            ) -> tuple[str, ...]:
    """Mutate by a few random swaps and one insertion move."""
    mutable = list(order)
    size = len(mutable)
    if size < 2:
        return order
    for _ in range(max(swaps, 1)):
        i, j = rng.sample(range(size), 2)
        mutable[i], mutable[j] = mutable[j], mutable[i]
    # Insertion move: take one element and reinsert it elsewhere.
    source = rng.randrange(size)
    element = mutable.pop(source)
    mutable.insert(rng.randrange(size), element)
    return tuple(mutable)

"""Deterministic priority-assignment baselines.

The genetic optimizer of the paper competes against (and is seeded with)
classical assignments:

* rate-monotonic: faster messages get lower identifiers;
* deadline-monotonic: shorter deadlines get lower identifiers;
* Audsley's optimal priority assignment (OPA): provably finds a feasible
  assignment whenever one exists for analyses (like CAN response-time
  analysis) where a message's response time depends only on the *set* of
  higher-priority messages, not their relative order.

All assignments permute the identifier pool already present in the K-Matrix,
so the optimized matrix stays within the identifier ranges the OEM owns.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.schedulability import analyze_schedulability
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import ErrorModel
from repro.optimize.objectives import AnalysisScenario


def _reassign(kmatrix: KMatrix, ordered_names: Sequence[str]) -> KMatrix:
    """Give the i-th name in ``ordered_names`` the i-th smallest identifier."""
    id_pool = sorted(message.can_id for message in kmatrix)
    if len(ordered_names) != len(id_pool):
        raise ValueError("ordered_names must cover every message exactly once")
    mapping = {name: can_id for name, can_id in zip(ordered_names, id_pool)}
    return kmatrix.with_priorities(mapping)


def rate_monotonic_assignment(kmatrix: KMatrix) -> KMatrix:
    """Re-assign identifiers so that shorter periods get higher priority."""
    ordered = sorted(kmatrix, key=lambda m: (m.period, m.name))
    return _reassign(kmatrix, [m.name for m in ordered])


def deadline_monotonic_assignment(kmatrix: KMatrix,
                                  deadline_policy: str = "explicit") -> KMatrix:
    """Re-assign identifiers so that shorter deadlines get higher priority."""
    ordered = sorted(
        kmatrix,
        key=lambda m: (m.effective_deadline(policy=deadline_policy), m.name))
    return _reassign(kmatrix, [m.name for m in ordered])


def audsley_assignment(
    kmatrix: KMatrix,
    scenario: AnalysisScenario,
) -> tuple[KMatrix, bool]:
    """Audsley's optimal priority assignment against one scenario.

    Starting from the lowest priority level, find any message that is
    schedulable at that level assuming all still-unassigned messages have
    higher priority; fix it there and recurse upwards.  If at some level no
    message fits, no fixed-priority assignment is feasible for this scenario.

    Returns the (possibly partially improved) matrix and a feasibility flag.
    When infeasible, the returned matrix assigns the remaining messages in
    deadline-monotonic order so the result is still a complete, valid matrix.
    """
    id_pool = sorted(message.can_id for message in kmatrix)
    unassigned = [m.name for m in kmatrix]
    assignment: dict[str, int] = {}
    feasible = True

    # Walk identifier pool from the numerically largest (lowest priority).
    for can_id in reversed(id_pool):
        placed = None
        for candidate in sorted(
                unassigned,
                key=lambda n: -kmatrix.get(n).effective_deadline(policy="explicit")):
            trial_mapping = dict(assignment)
            trial_mapping[candidate] = can_id
            # Unassigned messages (other than the candidate) get the remaining
            # (higher-priority) identifiers in an arbitrary but valid order.
            remaining_ids = [i for i in id_pool
                             if i not in trial_mapping.values()]
            remaining_names = [n for n in unassigned if n != candidate]
            for name, ident in zip(remaining_names, remaining_ids):
                trial_mapping[name] = ident
            trial_matrix = kmatrix.with_priorities(trial_mapping)
            report = scenario.analyze(trial_matrix)
            if report.verdict_for(candidate).meets_deadline:
                placed = candidate
                break
        if placed is None:
            feasible = False
            break
        assignment[placed] = can_id
        unassigned.remove(placed)

    if unassigned:
        # Infeasible (or aborted): fill the remaining slots deadline-monotonic.
        remaining_ids = sorted(i for i in id_pool
                               if i not in assignment.values())
        remaining_sorted = sorted(
            unassigned,
            key=lambda n: (kmatrix.get(n).effective_deadline(policy="explicit"),
                           n))
        for name, ident in zip(remaining_sorted, remaining_ids):
            assignment[name] = ident
    return kmatrix.with_priorities(assignment), feasible


def is_feasible(
    kmatrix: KMatrix,
    bus: CanBus,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.0,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
) -> bool:
    """Convenience wrapper: does this matrix meet all deadlines here?"""
    report = analyze_schedulability(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        deadline_policy=deadline_policy, controllers=controllers)
    return report.all_deadlines_met

"""Optimizer objectives: what-if scenarios and their aggregation.

The paper's optimizer is configured "to favor robust configurations over
sensitive ones": a candidate identifier assignment is evaluated not for one
operating point but across a set of what-if scenarios (different jitter
assumptions, error models and deadline interpretations).  This module defines
the scenario abstraction and the multi-objective evaluation the genetic
optimizer and the baselines share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.schedulability import SchedulabilityReport, analyze_schedulability
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import BurstErrorModel, ErrorModel, NoErrors


@dataclass(frozen=True)
class AnalysisScenario:
    """One what-if operating point a candidate configuration is checked in."""

    name: str
    bus: CanBus
    error_model: ErrorModel = field(default_factory=NoErrors)
    assumed_jitter_fraction: float = 0.0
    deadline_policy: str = "period"
    controllers: Mapping[str, ControllerModel] | None = None

    def analyze(self, kmatrix: KMatrix) -> SchedulabilityReport:
        """Run the schedulability analysis of ``kmatrix`` in this scenario."""
        return analyze_schedulability(
            kmatrix=kmatrix,
            bus=self.bus,
            error_model=self.error_model,
            assumed_jitter_fraction=self.assumed_jitter_fraction,
            deadline_policy=self.deadline_policy,
            controllers=self.controllers,
        )


@dataclass(frozen=True)
class ConfigurationEvaluation:
    """Multi-objective evaluation of one identifier assignment.

    Objectives (all to be minimised):

    ``lost_messages``
        Total number of deadline misses summed over all scenarios -- the
        paper's primary goal ("exhibit less message loss").
    ``negative_robustness``
        Negated sum of the worst normalised slacks across scenarios; a more
        robust configuration has larger slacks and therefore a smaller
        (more negative) value.
    ``sensitivity_penalty``
        Number of messages whose slack falls below 10 % of their deadline in
        any scenario, approximating "favor robust configurations over
        sensitive ones".
    """

    lost_messages: int
    negative_robustness: float
    sensitivity_penalty: int
    per_scenario_loss: tuple[float, ...] = ()

    def objectives(self) -> tuple[float, float, float]:
        """Objective vector (all minimised)."""
        return (float(self.lost_messages), self.negative_robustness,
                float(self.sensitivity_penalty))

    def dominates(self, other: "ConfigurationEvaluation") -> bool:
        """Pareto dominance on the objective vector."""
        mine, theirs = self.objectives(), other.objectives()
        return all(m <= t for m, t in zip(mine, theirs)) and any(
            m < t for m, t in zip(mine, theirs))


def evaluate_configuration(
    kmatrix: KMatrix,
    scenarios: Sequence[AnalysisScenario],
    sensitivity_threshold: float = 0.10,
) -> ConfigurationEvaluation:
    """Evaluate one K-Matrix (identifier assignment) across all scenarios."""
    lost = 0
    robustness = 0.0
    tight_messages: set[str] = set()
    per_scenario_loss = []
    for scenario in scenarios:
        report = scenario.analyze(kmatrix)
        lost += len(report.missed)
        per_scenario_loss.append(report.loss_fraction)
        worst = report.worst_normalized_slack
        # Clamp the contribution of one scenario so a single unbounded
        # response time does not drown out the other objectives.
        robustness += max(min(worst, 1.0), -1.0)
        for verdict in report.verdicts:
            if verdict.normalized_slack < sensitivity_threshold:
                tight_messages.add(verdict.name)
    return ConfigurationEvaluation(
        lost_messages=lost,
        negative_robustness=-robustness,
        sensitivity_penalty=len(tight_messages),
        per_scenario_loss=tuple(per_scenario_loss),
    )


def paper_scenarios(
    bus: CanBus,
    controllers: Mapping[str, ControllerModel] | None = None,
    jitter_fractions: Sequence[float] = (0.15, 0.25),
    error_model: ErrorModel | None = None,
) -> list[AnalysisScenario]:
    """The scenario set used for the Figure-5 optimization run.

    The optimizer is asked to keep the bus loss-free up to 25 % jitter in the
    paper's *worst-case* interpretation (burst errors, bit stuffing, minimum
    re-arrival deadlines) while also staying robust in the benign best-case
    interpretation.
    """
    error_model = error_model if error_model is not None else BurstErrorModel(
        min_interarrival=50.0, burst_length=3, intra_burst_gap=0.5)
    scenarios = []
    for fraction in jitter_fractions:
        scenarios.append(AnalysisScenario(
            name=f"best-case@{fraction:.0%}",
            bus=bus.with_bit_stuffing(False),
            error_model=NoErrors(),
            assumed_jitter_fraction=fraction,
            deadline_policy="period",
            controllers=controllers,
        ))
        scenarios.append(AnalysisScenario(
            name=f"worst-case@{fraction:.0%}",
            bus=bus.with_bit_stuffing(True),
            error_model=error_model,
            assumed_jitter_fraction=fraction,
            deadline_policy="min-rearrival",
            controllers=controllers,
        ))
    return scenarios

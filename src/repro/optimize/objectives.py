"""Optimizer objectives: what-if scenarios and their aggregation.

The paper's optimizer is configured "to favor robust configurations over
sensitive ones": a candidate identifier assignment is evaluated not for one
operating point but across a set of what-if scenarios (different jitter
assumptions, error models and deadline interpretations).  This module defines
the scenario abstraction and the multi-objective evaluation the genetic
optimizer and the baselines share.

Warm starts
-----------
A candidate evaluation re-solves the same fixed points many times, so two
warm-start channels (both obeying the lower-bound contract documented in
:mod:`repro.analysis.response_time`, hence bit-identical to cold starts):

* **scenario chaining** -- scenarios that differ only in the assumed jitter
  fraction are evaluated in ascending order, each seeded from the previous
  one (raising jitter only grows the fixed points);
* **parent seeding** -- a GA candidate starts from its parent's evaluation,
  but only for messages where the parent solution provably lower-bounds the
  child's: the child must give the message a superset of the parent's
  higher-priority messages *and* at least the parent's blocking term.
  Messages that got a better priority than in the parent (where the parent
  solution could overshoot the new least fixed point) are analysed cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.reference import ReferenceCanBusAnalysis
from repro.analysis.response_time import CanBusAnalysis, MessageResponseTime
from repro.analysis.schedulability import (
    SchedulabilityReport,
    analyze_schedulability,
    report_from_results,
)
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.errors.models import BurstErrorModel, ErrorModel, NoErrors


@dataclass(frozen=True)
class AnalysisScenario:
    """One what-if operating point a candidate configuration is checked in."""

    name: str
    bus: CanBus
    error_model: ErrorModel = field(default_factory=NoErrors)
    assumed_jitter_fraction: float = 0.0
    deadline_policy: str = "period"
    controllers: Mapping[str, ControllerModel] | None = None

    def analyze(self, kmatrix: KMatrix) -> SchedulabilityReport:
        """Run the schedulability analysis of ``kmatrix`` in this scenario."""
        return analyze_schedulability(
            kmatrix=kmatrix,
            bus=self.bus,
            error_model=self.error_model,
            assumed_jitter_fraction=self.assumed_jitter_fraction,
            deadline_policy=self.deadline_policy,
            controllers=self.controllers,
        )


@dataclass(frozen=True)
class ConfigurationEvaluation:
    """Multi-objective evaluation of one identifier assignment.

    Objectives (all to be minimised):

    ``lost_messages``
        Total number of deadline misses summed over all scenarios -- the
        paper's primary goal ("exhibit less message loss").
    ``negative_robustness``
        Negated sum of the worst normalised slacks across scenarios; a more
        robust configuration has larger slacks and therefore a smaller
        (more negative) value.
    ``sensitivity_penalty``
        Number of messages whose slack falls below 10 % of their deadline in
        any scenario, approximating "favor robust configurations over
        sensitive ones".
    """

    lost_messages: int
    negative_robustness: float
    sensitivity_penalty: int
    per_scenario_loss: tuple[float, ...] = ()

    def objectives(self) -> tuple[float, float, float]:
        """Objective vector (all minimised)."""
        return (float(self.lost_messages), self.negative_robustness,
                float(self.sensitivity_penalty))

    def dominates(self, other: "ConfigurationEvaluation") -> bool:
        """Pareto dominance on the objective vector."""
        mine, theirs = self.objectives(), other.objectives()
        return all(m <= t for m, t in zip(mine, theirs)) and any(
            m < t for m, t in zip(mine, theirs))


@dataclass(frozen=True)
class EvaluationContext:
    """Warm-start seeds carried from one evaluated candidate to the next.

    ``priority_order`` is the candidate's message order from highest to
    lowest priority; ``scenario_results`` maps scenario index to the raw
    per-message response times of that scenario.
    """

    priority_order: tuple[str, ...]
    scenario_results: tuple[Mapping[str, MessageResponseTime], ...]


def _chain_predecessor(
    scenarios: Sequence[AnalysisScenario],
    evaluated: Sequence[int],
    index: int,
) -> int | None:
    """Best already-evaluated scenario to chain warm starts from.

    A predecessor must differ from ``scenarios[index]`` only in a smaller or
    equal assumed jitter fraction (same bus, error model and controllers --
    the deadline policy does not influence response times); among candidates
    the largest jitter wins.
    """
    target = scenarios[index]
    best: int | None = None
    for done in evaluated:
        other = scenarios[done]
        if other.bus != target.bus:
            continue
        if other.error_model != target.error_model:
            continue
        if other.controllers != target.controllers:
            continue
        if other.assumed_jitter_fraction > target.assumed_jitter_fraction:
            continue
        if (best is None or scenarios[best].assumed_jitter_fraction
                < other.assumed_jitter_fraction):
            best = done
    return best


def _parent_seeds(
    kmatrix: KMatrix,
    analysis: CanBusAnalysis,
    order: Sequence[str],
    parent: EvaluationContext,
    scenario_index: int,
) -> dict[str, MessageResponseTime]:
    """Parent results that provably lower-bound the child's fixed points.

    A parent result for message ``m`` is a valid seed when the child gives
    ``m`` a superset of the parent's higher-priority messages (checked via a
    running maximum over child positions, O(n) total) and at least the
    parent's blocking term; then the child's analysis right-hand side
    dominates the parent's pointwise and the seeded iteration converges to
    the same least fixed point as a cold start.
    """
    if scenario_index >= len(parent.scenario_results):
        return {}
    parent_results = parent.scenario_results[scenario_index]
    child_pos = {name: i for i, name in enumerate(order)}
    if len(child_pos) != len(parent.priority_order):
        return {}
    seeds: dict[str, MessageResponseTime] = {}
    running_max = -1
    for name in parent.priority_order:
        position = child_pos.get(name)
        if position is None:
            return {}
        result = parent_results.get(name)
        if (result is not None and result.bounded and running_max < position):
            message = kmatrix.get(name)
            if analysis.blocking(message) >= result.blocking:
                seeds[name] = result
        if position > running_max:
            running_max = position
    return seeds


def _merge_seeds(
    first: Mapping[str, MessageResponseTime] | None,
    second: Mapping[str, MessageResponseTime] | None,
) -> Mapping[str, MessageResponseTime] | None:
    """Elementwise maximum of two seed maps (both are lower bounds)."""
    if not first:
        return second
    if not second:
        return first
    merged: dict[str, MessageResponseTime] = dict(first)
    for name, candidate in second.items():
        existing = merged.get(name)
        if existing is None or candidate.busy_period > existing.busy_period:
            merged[name] = candidate
    return merged


def aggregate_reports(
    reports: Sequence[SchedulabilityReport],
    sensitivity_threshold: float = 0.10,
) -> ConfigurationEvaluation:
    """Fold per-scenario schedulability reports into the objective vector.

    Shared by the direct evaluation path below and the session-backed
    evaluator in :mod:`repro.service.evaluation`, so both aggregate
    identically (``reports`` must be in caller scenario order).
    """
    lost = 0
    robustness = 0.0
    tight_messages: set[str] = set()
    per_scenario_loss = []
    for report in reports:
        lost += len(report.missed)
        per_scenario_loss.append(report.loss_fraction)
        worst = report.worst_normalized_slack
        # Clamp the contribution of one scenario so a single unbounded
        # response time does not drown out the other objectives.
        robustness += max(min(worst, 1.0), -1.0)
        for verdict in report.verdicts:
            if verdict.normalized_slack < sensitivity_threshold:
                tight_messages.add(verdict.name)
    return ConfigurationEvaluation(
        lost_messages=lost,
        negative_robustness=-robustness,
        sensitivity_penalty=len(tight_messages),
        per_scenario_loss=tuple(per_scenario_loss),
    )


def evaluate_configuration(
    kmatrix: KMatrix,
    scenarios: Sequence[AnalysisScenario],
    sensitivity_threshold: float = 0.10,
) -> ConfigurationEvaluation:
    """Evaluate one K-Matrix (identifier assignment) across all scenarios."""
    evaluation, _ = evaluate_configuration_with_context(
        kmatrix, scenarios, sensitivity_threshold=sensitivity_threshold)
    return evaluation


def evaluate_configuration_with_context(
    kmatrix: KMatrix,
    scenarios: Sequence[AnalysisScenario],
    sensitivity_threshold: float = 0.10,
    warm_start: EvaluationContext | None = None,
    backend: str = "kernel",
) -> tuple[ConfigurationEvaluation, EvaluationContext]:
    """Evaluate a candidate and return warm-start context for its offspring.

    ``warm_start`` supplies the parent candidate's context (see the module
    docstring); ``backend`` selects the optimised kernel (default, with its
    ``"numpy"``/``"scalar"`` fixed-point backend chosen automatically --
    name either explicitly to pin it) or the retained naive path
    (``"reference"``, used by equivalence tests and the seed-vs-kernel
    benchmark; it ignores all warm starts).
    """
    if backend not in ("kernel", "reference", "numpy", "scalar"):
        raise ValueError(f"unknown analysis backend {backend!r}")
    analysis_backend = None if backend in ("kernel", "reference") else backend
    order = tuple(m.name for m in kmatrix.sorted_by_priority())

    # Evaluate scenarios in an order that allows chaining: ascending jitter
    # within compatible groups.  Objectives are aggregated in the caller's
    # scenario order afterwards, so the result is order-independent.
    schedule = sorted(range(len(scenarios)),
                      key=lambda i: scenarios[i].assumed_jitter_fraction)
    reports: dict[int, SchedulabilityReport] = {}
    results: dict[int, dict[str, MessageResponseTime]] = {}
    evaluated: list[int] = []
    for index in schedule:
        scenario = scenarios[index]
        if backend == "reference":
            analysis = ReferenceCanBusAnalysis(
                kmatrix=kmatrix, bus=scenario.bus,
                error_model=scenario.error_model,
                assumed_jitter_fraction=scenario.assumed_jitter_fraction,
                controllers=scenario.controllers)
            scenario_results = analysis.analyze_all()
        else:
            analysis = CanBusAnalysis(
                kmatrix=kmatrix, bus=scenario.bus,
                error_model=scenario.error_model,
                assumed_jitter_fraction=scenario.assumed_jitter_fraction,
                controllers=scenario.controllers,
                backend=analysis_backend)
            seeds: Mapping[str, MessageResponseTime] | None = None
            predecessor = _chain_predecessor(scenarios, evaluated, index)
            if predecessor is not None:
                seeds = results[predecessor]
            if warm_start is not None:
                seeds = _merge_seeds(seeds, _parent_seeds(
                    kmatrix, analysis, order, warm_start, index))
            scenario_results = analysis.analyze_all(warm_start=seeds)
        results[index] = scenario_results
        reports[index] = report_from_results(
            kmatrix, analysis, scenario_results, scenario.deadline_policy)
        evaluated.append(index)

    evaluation = aggregate_reports(
        [reports[i] for i in range(len(scenarios))], sensitivity_threshold)
    context = EvaluationContext(
        priority_order=order,
        scenario_results=tuple(results[i] for i in range(len(scenarios))),
    )
    return evaluation, context


def paper_scenarios(
    bus: CanBus,
    controllers: Mapping[str, ControllerModel] | None = None,
    jitter_fractions: Sequence[float] = (0.15, 0.25),
    error_model: ErrorModel | None = None,
) -> list[AnalysisScenario]:
    """The scenario set used for the Figure-5 optimization run.

    The optimizer is asked to keep the bus loss-free up to 25 % jitter in the
    paper's *worst-case* interpretation (burst errors, bit stuffing, minimum
    re-arrival deadlines) while also staying robust in the benign best-case
    interpretation.
    """
    error_model = error_model if error_model is not None else BurstErrorModel(
        min_interarrival=50.0, burst_length=3, intra_burst_gap=0.5)
    scenarios = []
    for fraction in jitter_fractions:
        scenarios.append(AnalysisScenario(
            name=f"best-case@{fraction:.0%}",
            bus=bus.with_bit_stuffing(False),
            error_model=NoErrors(),
            assumed_jitter_fraction=fraction,
            deadline_policy="period",
            controllers=controllers,
        ))
        scenarios.append(AnalysisScenario(
            name=f"worst-case@{fraction:.0%}",
            bus=bus.with_bit_stuffing(True),
            error_model=error_model,
            assumed_jitter_fraction=fraction,
            deadline_policy="min-rearrival",
            controllers=controllers,
        ))
    return scenarios

"""CAN identifier (priority) optimization (Section 4.3 of the paper).

"In order to eliminate this message loss we were looking for optimized
priority (CAN ID) configurations.  We used the automatic optimization feature
of our SymTA/S tool suite to find better CAN ID configurations that would
exhibit less message loss.  The optimizer also performs what-if analysis
using genetic algorithms.  We configured the optimizer to favor robust
configurations over sensitive ones."

This package provides:

* deterministic baselines: rate-/deadline-monotonic re-assignment and
  Audsley's optimal priority assignment (:mod:`repro.optimize.assignment`);
* evaluation scenarios bundling jitter assumptions, error models and deadline
  policies into optimizer objectives (:mod:`repro.optimize.objectives`);
* an SPEA2-style multi-objective genetic algorithm searching the space of
  identifier permutations (:mod:`repro.optimize.genetic`).
"""

from repro.optimize.assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    rate_monotonic_assignment,
)
from repro.optimize.objectives import (
    AnalysisScenario,
    ConfigurationEvaluation,
    EvaluationContext,
    evaluate_configuration,
    evaluate_configuration_with_context,
    paper_scenarios,
)
from repro.optimize.genetic import (
    GeneticOptimizerConfig,
    OptimizationResult,
    optimize_priorities,
)

__all__ = [
    "rate_monotonic_assignment",
    "deadline_monotonic_assignment",
    "audsley_assignment",
    "AnalysisScenario",
    "ConfigurationEvaluation",
    "EvaluationContext",
    "evaluate_configuration",
    "evaluate_configuration_with_context",
    "paper_scenarios",
    "GeneticOptimizerConfig",
    "OptimizationResult",
    "optimize_priorities",
]

"""Supply-chain interfaces: data sheets, requirements and contracts.

Sections 5 and 6 of the paper describe the methodological contribution: the
same timing properties (send/receive jitters, deadlines, bursts) appear once
as *requirements* written by one party and once as *guarantees* given by the
other, in both directions (Figure 6).  Analysis lets either side derive the
numbers early, and integration is safe when every guarantee refines the
matching requirement -- without anyone disclosing internal implementation
details (task priorities, gatewaying strategies).

* :mod:`repro.supplychain.contracts` -- timing data sheets, requirement
  specifications and the refinement check;
* :mod:`repro.supplychain.workflow` -- deriving OEM requirements from
  sensitivity analysis, deriving supplier data sheets from ECU analysis, and
  the iterative-refinement loop of Section 5.2.
"""

from repro.supplychain.contracts import (
    ContractCheckResult,
    ContractViolation,
    RequirementSpec,
    TimingDataSheet,
    TimingProperty,
    check_contract,
)
from repro.supplychain.workflow import (
    IntegrationRound,
    derive_oem_requirements,
    derive_supplier_datasheet,
    iterative_refinement,
)

__all__ = [
    "TimingProperty",
    "TimingDataSheet",
    "RequirementSpec",
    "ContractViolation",
    "ContractCheckResult",
    "check_contract",
    "derive_oem_requirements",
    "derive_supplier_datasheet",
    "IntegrationRound",
    "iterative_refinement",
]

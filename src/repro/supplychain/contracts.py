"""Timing data sheets, requirement specifications and the refinement check.

The exchange format is deliberately small: per message a period, a jitter
bound, optionally a burst bound (minimum distance) and a deadline/maximum
latency.  That is exactly the information Figure 6 shows crossing the
OEM/supplier boundary, and it is sufficient for either side to re-run their
analysis -- while internal details (task priorities, gatewaying strategies)
stay private.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.events.model import EventModel, event_model_from_parameters
from repro.events.operations import is_refinement


class TimingProperty(str, Enum):
    """Which timing aspect of a message a clause talks about."""

    SEND_JITTER = "send-jitter"
    ARRIVAL_JITTER = "arrival-jitter"
    RESPONSE_TIME = "response-time"
    PERIOD = "period"


@dataclass(frozen=True)
class MessageTimingClause:
    """Timing of one message as stated in a data sheet or requirement.

    Attributes
    ----------
    message:
        K-Matrix message name.
    period:
        Nominal period (ms).
    max_jitter:
        Upper bound on the queuing (send side) or arrival (receive side)
        jitter in milliseconds.
    min_distance:
        Lower bound on the distance between two consecutive events (ms);
        zero when not constrained.
    max_latency:
        Upper bound on the response time / latency where applicable.
    """

    message: str
    period: float
    max_jitter: float = 0.0
    min_distance: float = 0.0
    max_latency: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.max_jitter < 0 or self.min_distance < 0:
            raise ValueError("jitter and min_distance must be non-negative")
        if self.max_latency is not None and self.max_latency <= 0:
            raise ValueError("max_latency must be positive when given")

    def event_model(self) -> EventModel:
        """Standard event model corresponding to this clause."""
        return event_model_from_parameters(
            period=self.period, jitter=self.max_jitter,
            min_distance=self.min_distance)


@dataclass(frozen=True)
class TimingDataSheet:
    """What one party *guarantees* (Figure 6: "guaranteed by ...")."""

    issuer: str
    role: str  # "supplier" or "OEM"
    property: TimingProperty
    clauses: tuple[MessageTimingClause, ...] = ()

    def clause_for(self, message: str) -> MessageTimingClause:
        """Guaranteed clause of one message."""
        for clause in self.clauses:
            if clause.message == message:
                return clause
        raise KeyError(message)

    def messages(self) -> list[str]:
        """Names of all messages covered by the data sheet."""
        return [clause.message for clause in self.clauses]


@dataclass(frozen=True)
class RequirementSpec:
    """What one party *requires* (Figure 6: "required by ...")."""

    issuer: str
    role: str  # "OEM" or "supplier"
    property: TimingProperty
    clauses: tuple[MessageTimingClause, ...] = ()

    def clause_for(self, message: str) -> MessageTimingClause:
        """Required clause of one message."""
        for clause in self.clauses:
            if clause.message == message:
                return clause
        raise KeyError(message)

    def messages(self) -> list[str]:
        """Names of all messages covered by the requirement."""
        return [clause.message for clause in self.clauses]


@dataclass(frozen=True)
class ContractViolation:
    """One clause whose guarantee does not satisfy the requirement."""

    message: str
    reason: str
    required: MessageTimingClause | None = None
    guaranteed: MessageTimingClause | None = None

    def describe(self) -> str:
        """Human-readable explanation used in integration reports."""
        return f"{self.message}: {self.reason}"


@dataclass(frozen=True)
class ContractCheckResult:
    """Outcome of checking a data sheet against a requirement spec."""

    requirement: RequirementSpec
    datasheet: TimingDataSheet
    violations: tuple[ContractViolation, ...] = ()

    @property
    def satisfied(self) -> bool:
        """True when every required clause is covered and refined."""
        return not self.violations

    def describe(self) -> str:
        """Multi-line integration-report text."""
        header = (f"contract {self.datasheet.issuer} -> "
                  f"{self.requirement.issuer} "
                  f"({self.requirement.property.value}): ")
        if self.satisfied:
            return header + "all requirements met"
        lines = [header + f"{len(self.violations)} violation(s)"]
        lines.extend("  " + violation.describe() for violation in self.violations)
        return "\n".join(lines)


def check_contract(requirement: RequirementSpec,
                   datasheet: TimingDataSheet) -> ContractCheckResult:
    """Check that a guarantee data sheet satisfies a requirement spec.

    For every required clause the data sheet must contain a clause for the
    same message whose event model *refines* the required one (no faster, no
    more jittery, no burstier) and whose latency bound (when required) is at
    most the required one.
    """
    violations: list[ContractViolation] = []
    if requirement.property != datasheet.property:
        violations.append(ContractViolation(
            message="*",
            reason=(f"property mismatch: requirement is about "
                    f"{requirement.property.value}, data sheet about "
                    f"{datasheet.property.value}")))
        return ContractCheckResult(requirement=requirement, datasheet=datasheet,
                                   violations=tuple(violations))
    for required in requirement.clauses:
        try:
            guaranteed = datasheet.clause_for(required.message)
        except KeyError:
            violations.append(ContractViolation(
                message=required.message,
                reason="no guarantee given for this message",
                required=required))
            continue
        if abs(guaranteed.period - required.period) > 1e-9:
            violations.append(ContractViolation(
                message=required.message,
                reason=(f"period mismatch: required {required.period:g} ms, "
                        f"guaranteed {guaranteed.period:g} ms"),
                required=required, guaranteed=guaranteed))
            continue
        if not is_refinement(guaranteed.event_model(), required.event_model()):
            violations.append(ContractViolation(
                message=required.message,
                reason=(f"guaranteed jitter {guaranteed.max_jitter:g} ms does not "
                        f"refine required jitter {required.max_jitter:g} ms"),
                required=required, guaranteed=guaranteed))
            continue
        if required.max_latency is not None:
            if guaranteed.max_latency is None:
                violations.append(ContractViolation(
                    message=required.message,
                    reason="latency bound required but not guaranteed",
                    required=required, guaranteed=guaranteed))
                continue
            if guaranteed.max_latency > required.max_latency + 1e-9:
                violations.append(ContractViolation(
                    message=required.message,
                    reason=(f"guaranteed latency {guaranteed.max_latency:g} ms "
                            f"exceeds required {required.max_latency:g} ms"),
                    required=required, guaranteed=guaranteed))
    return ContractCheckResult(requirement=requirement, datasheet=datasheet,
                               violations=tuple(violations))

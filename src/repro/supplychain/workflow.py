"""Supply-chain workflows: deriving requirements, data sheets and iterating.

Three pieces of the methodology:

* the OEM derives *send-jitter requirements* for suppliers from sensitivity /
  maximum-tolerable-jitter analysis of the bus (Section 5, first option);
* the supplier derives a *send-jitter data sheet* from the ECU-level analysis
  of its task set (Section 5.1), and the OEM conversely derives an
  *arrival-timing data sheet* for the supplier's control algorithms;
* both sides repeat the exchange as design details become available
  (Section 5.2, "iterative refinement"), freezing parameters and re-checking
  the contracts each round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.response_time import CanBusAnalysis
from repro.can.bus import CanBus
from repro.can.controller import ControllerModel
from repro.can.kmatrix import KMatrix
from repro.ecu.analysis import message_output_models
from repro.ecu.task import EcuModel
from repro.errors.models import ErrorModel
from repro.sensitivity.robustness import max_tolerable_jitter_per_message
from repro.supplychain.contracts import (
    ContractCheckResult,
    MessageTimingClause,
    RequirementSpec,
    TimingDataSheet,
    TimingProperty,
    check_contract,
)


def derive_oem_requirements(
    kmatrix: KMatrix,
    bus: CanBus,
    supplier_ecus: Sequence[str],
    error_model: ErrorModel | None = None,
    deadline_policy: str = "period",
    controllers: Mapping[str, ControllerModel] | None = None,
    background_jitter_fraction: float = 0.15,
    safety_margin: float = 0.8,
    oem_name: str = "OEM",
) -> dict[str, RequirementSpec]:
    """Derive per-supplier send-jitter requirements from bus analysis.

    For every message sent by one of the ``supplier_ecus`` the maximum
    tolerable jitter is determined (with the rest of the bus at the
    background assumption), scaled by ``safety_margin`` and written as a
    requirement clause.  The result is one :class:`RequirementSpec` per
    supplier ECU -- exactly the "required by OEM" arrow of Figure 6.
    """
    if not 0.0 < safety_margin <= 1.0:
        raise ValueError("safety_margin must be within (0, 1]")
    budgets = max_tolerable_jitter_per_message(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        deadline_policy=deadline_policy, controllers=controllers,
        background_jitter_fraction=background_jitter_fraction)
    specs: dict[str, RequirementSpec] = {}
    for ecu in supplier_ecus:
        clauses = []
        for message in kmatrix.sent_by(ecu):
            budget = budgets[message.name]
            allowed_fraction = budget.max_feasible_fraction * safety_margin
            clauses.append(MessageTimingClause(
                message=message.name,
                period=message.period,
                max_jitter=round(allowed_fraction * message.period, 4),
            ))
        specs[ecu] = RequirementSpec(
            issuer=oem_name, role="OEM",
            property=TimingProperty.SEND_JITTER,
            clauses=tuple(clauses))
    return specs


def derive_supplier_datasheet(
    ecu: EcuModel,
    kmatrix: KMatrix,
    bus: CanBus,
) -> TimingDataSheet:
    """Derive the send-jitter guarantees of one supplier ECU.

    The supplier runs the ECU-level analysis of its own task set (which it
    does not have to disclose) and publishes only the resulting message
    periods and send jitters -- the "guaranteed by supplier" arrow of
    Figure 6.
    """
    models = message_output_models(ecu)
    clauses = []
    for message in kmatrix.sent_by(ecu.name):
        model = models.get(message.name)
        if model is None:
            # The ECU model does not (yet) implement this message: publish
            # the K-Matrix nominal values with zero jitter margin so the
            # contract check flags it if the OEM requires more detail.
            clauses.append(MessageTimingClause(
                message=message.name, period=message.period,
                max_jitter=message.jitter or 0.0))
            continue
        clauses.append(MessageTimingClause(
            message=message.name,
            period=model.period,
            max_jitter=round(model.jitter, 4),
            min_distance=model.min_distance,
        ))
    return TimingDataSheet(
        issuer=ecu.name, role="supplier",
        property=TimingProperty.SEND_JITTER,
        clauses=tuple(clauses))


def derive_oem_arrival_datasheet(
    kmatrix: KMatrix,
    bus: CanBus,
    receiver_ecu: str,
    error_model: ErrorModel | None = None,
    assumed_jitter_fraction: float = 0.15,
    controllers: Mapping[str, ControllerModel] | None = None,
    oem_name: str = "OEM",
) -> TimingDataSheet:
    """Derive the arrival-timing guarantees the OEM gives a receiving ECU.

    "The message arrival timing is a property of the bus, so the OEM is in
    charge of providing such data" (Section 5.1): the OEM analyses the bus
    and publishes, per message received by the supplier's ECU, the arrival
    jitter (input jitter plus response-time interval) and the worst-case
    latency.
    """
    analysis = CanBusAnalysis(
        kmatrix=kmatrix, bus=bus, error_model=error_model,
        assumed_jitter_fraction=assumed_jitter_fraction,
        controllers=controllers)
    clauses = []
    for message in kmatrix.received_by(receiver_ecu):
        result = analysis.response_time(message)
        input_model = analysis.event_model(message)
        arrival_jitter = input_model.jitter + result.response_interval
        clauses.append(MessageTimingClause(
            message=message.name,
            period=message.period,
            max_jitter=round(arrival_jitter, 4),
            max_latency=round(result.worst_case, 4),
        ))
    return TimingDataSheet(
        issuer=oem_name, role="OEM",
        property=TimingProperty.ARRIVAL_JITTER,
        clauses=tuple(clauses))


@dataclass(frozen=True)
class IntegrationRound:
    """One round of the iterative-refinement loop."""

    index: int
    description: str
    contract_results: tuple[ContractCheckResult, ...]
    all_satisfied: bool

    def describe(self) -> str:
        """One-line summary used in refinement logs."""
        status = "OK" if self.all_satisfied else "violations"
        return f"round {self.index} ({self.description}): {status}"


def iterative_refinement(
    kmatrix: KMatrix,
    bus: CanBus,
    requirement_rounds: Sequence[tuple[str, Mapping[str, RequirementSpec]]],
    datasheet_rounds: Sequence[Mapping[str, TimingDataSheet]],
) -> list[IntegrationRound]:
    """Replay an iterative-refinement history (Section 5.2).

    Parameters
    ----------
    kmatrix, bus:
        The integration context (not modified; kept for reporting symmetry).
    requirement_rounds:
        Per round, a description plus the OEM requirement specs per supplier
        ECU valid in that round.
    datasheet_rounds:
        Per round, the supplier data sheets per ECU available in that round.

    Returns
    -------
    list[IntegrationRound]
        One entry per round with all contract checks evaluated, so newly
        appearing bottlenecks are visible the moment a data sheet changes.
    """
    del kmatrix, bus
    if len(requirement_rounds) != len(datasheet_rounds):
        raise ValueError("requirement_rounds and datasheet_rounds must have "
                         "the same length")
    rounds: list[IntegrationRound] = []
    for index, ((description, requirements), datasheets) in enumerate(
            zip(requirement_rounds, datasheet_rounds), start=1):
        results = []
        for ecu_name, requirement in requirements.items():
            datasheet = datasheets.get(ecu_name)
            if datasheet is None:
                continue
            results.append(check_contract(requirement, datasheet))
        rounds.append(IntegrationRound(
            index=index,
            description=description,
            contract_results=tuple(results),
            all_satisfied=all(result.satisfied for result in results),
        ))
    return rounds

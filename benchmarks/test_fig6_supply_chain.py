"""Figure 6 / Section 5: duality of requirements and guarantees.

Paper: the OEM requires send jitters from the supplier and guarantees arrival
timing in return; the supplier does the opposite.  What is initially assumed
and required must later be guaranteed.  The benchmark derives both directions
on the case-study bus and checks the contracts.
"""

from __future__ import annotations

from repro.ecu.task import EcuModel, OsekOverheads, Task, TaskKind
from repro.events.model import PeriodicEventModel
from repro.reporting.tables import format_table
from repro.supplychain.contracts import check_contract
from repro.supplychain.workflow import (
    derive_oem_arrival_datasheet,
    derive_oem_requirements,
    derive_supplier_datasheet,
)


def _supplier_ecu(name: str, kmatrix) -> EcuModel:
    """A plausible supplier implementation of one case-study ECU."""
    tasks = [Task(name="ControlISR", priority=1, wcet=0.1, bcet=0.05,
                  kind=TaskKind.INTERRUPT,
                  activation=PeriodicEventModel(period=5.0))]
    for index, message in enumerate(kmatrix.sent_by(name)):
        tasks.append(Task(
            name=f"Tx_{message.name}", priority=5 + index, wcet=0.2, bcet=0.05,
            activation=PeriodicEventModel(period=message.period),
            sends_messages=(message.name,)))
    return EcuModel(name=name, overheads=OsekOverheads(), tasks=tasks)


def test_fig6_requirements_and_guarantees(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study
    supplier = "ECU2"

    def derive_all():
        oem_requirements = derive_oem_requirements(
            kmatrix, bus, supplier_ecus=[supplier], controllers=controllers,
            background_jitter_fraction=0.15)[supplier]
        supplier_guarantees = derive_supplier_datasheet(
            _supplier_ecu(supplier, kmatrix), kmatrix, bus)
        oem_guarantees = derive_oem_arrival_datasheet(
            kmatrix, bus, receiver_ecu=supplier, controllers=controllers,
            assumed_jitter_fraction=0.15)
        return oem_requirements, supplier_guarantees, oem_guarantees

    oem_requirements, supplier_guarantees, oem_guarantees = benchmark.pedantic(
        derive_all, rounds=1, iterations=1)

    send_check = check_contract(oem_requirements, supplier_guarantees)

    rows = []
    for clause in oem_requirements.clauses:
        guaranteed = supplier_guarantees.clause_for(clause.message)
        rows.append([clause.message, clause.period, clause.max_jitter,
                     guaranteed.max_jitter,
                     "ok" if guaranteed.max_jitter <= clause.max_jitter
                     else "VIOLATED"])

    with capsys.disabled():
        print()
        print("Figure 6 -- duality of requirements and guarantees")
        print(format_table(
            ["message (sent by supplier)", "period [ms]",
             "required J [ms]", "guaranteed J [ms]", "verdict"],
            rows, title=f"OEM requirements vs. {supplier} guarantees "
                        "(send jitter)"))
        print()
        print(f"OEM arrival guarantees towards {supplier}: "
              f"{len(oem_guarantees.clauses)} messages, e.g.")
        for clause in oem_guarantees.clauses[:3]:
            print(f"  {clause.message:<30} latency <= "
                  f"{clause.max_latency:.2f} ms, jitter <= "
                  f"{clause.max_jitter:.2f} ms")
        print()
        print(send_check.describe())

    # The derived requirements are satisfiable by a reasonable implementation
    # and every received message gets an arrival guarantee.
    assert send_check.satisfied
    assert {c.message for c in oem_guarantees.clauses} == \
        {m.name for m in kmatrix.received_by(supplier)}

"""Figure 4: jitter-sensitive and robust messages.

Paper: response time as a function of the assumed jitter (0..60 % of the
message period) for selected messages; some are robust (flat curves around a
few ms), others sensitive or very sensitive (curves climbing towards ~20 ms).
The benchmark sweeps the full matrix, classifies every message, and prints
one representative curve per class.
"""

from __future__ import annotations

from repro.experiments import JITTER_SWEEP_FRACTIONS, SPORADIC_ERRORS
from repro.reporting.tables import format_sensitivity_table
from repro.sensitivity.jitter import classify_all, jitter_sensitivity_all


def test_fig4_jitter_sensitivity(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study

    def sweep():
        return jitter_sensitivity_all(
            kmatrix, bus, jitter_fractions=JITTER_SWEEP_FRACTIONS,
            error_model=SPORADIC_ERRORS, controllers=controllers)

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    groups = classify_all(curves)

    representatives = {}
    for sensitivity_class, names in groups.items():
        if names:
            # Pick the member with the largest response-time increase so the
            # table shows the spread of the class.
            name = max(names, key=lambda n: curves[n].absolute_increase)
            representatives[f"{name} ({sensitivity_class.value})"] = \
                curves[name].as_rows()

    with capsys.disabled():
        print()
        print("Figure 4 -- jitter-sensitive and robust messages")
        for sensitivity_class, names in groups.items():
            print(f"  {sensitivity_class.value:<18}: {len(names)} messages")
        print()
        print(format_sensitivity_table(
            representatives,
            title="Response time vs. jitter (one representative per class)"))

    # Paper shape: both robust and sensitive messages exist, every curve is
    # bounded, and sensitive curves grow substantially while robust ones stay
    # flat (the paper's selected messages span roughly 1..25 ms).
    import math
    flat = [c for c in curves.values() if c.absolute_increase < 0.5]
    steep = [c for c in curves.values() if c.absolute_increase > 2.0]
    assert flat, "expected robust (flat) messages"
    assert steep, "expected sensitive (steep) messages"
    assert all(math.isfinite(c.final) for c in curves.values())
    # Queuing delays (response minus the message's own injected jitter) stay
    # in the same order of magnitude as the figure.
    assert max(c.final - 0.6 * c.period for c in curves.values()) < 50.0

"""Section 5.2: iterative refinement as design details become available.

Paper: with a clear interface the analysis is repeated as new design details
arrive; newly appearing bottlenecks are discovered quickly and remaining
flexibility can be traded between components.  The benchmark replays three
integration rounds (assumptions -> first data sheets -> reworked data sheets)
and shows how the contract verdicts and the bus-level margin evolve.
"""

from __future__ import annotations

from repro.analysis.schedulability import analyze_schedulability
from repro.reporting.tables import format_table
from repro.sensitivity.robustness import max_tolerable_jitter_fraction
from repro.supplychain.contracts import (
    MessageTimingClause,
    TimingDataSheet,
    TimingProperty,
)
from repro.supplychain.workflow import derive_oem_requirements, iterative_refinement


def _datasheet(kmatrix, supplier: str, jitter_fraction: float) -> TimingDataSheet:
    """A supplier data sheet guaranteeing a uniform relative jitter."""
    clauses = tuple(
        MessageTimingClause(message=m.name, period=m.period,
                            max_jitter=round(jitter_fraction * m.period, 4))
        for m in kmatrix.sent_by(supplier))
    return TimingDataSheet(issuer=supplier, role="supplier",
                           property=TimingProperty.SEND_JITTER, clauses=clauses)


def test_iterative_refinement_rounds(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study
    suppliers = ["ECU1", "ECU2"]

    def run_rounds():
        requirements = derive_oem_requirements(
            kmatrix, bus, supplier_ecus=suppliers, controllers=controllers,
            background_jitter_fraction=0.15)
        requirement_rounds = [
            ("requirements from early what-if analysis", requirements),
            ("first supplier data sheets", requirements),
            ("reworked supplier data sheets", requirements),
        ]
        datasheet_rounds = [
            {ecu: _datasheet(kmatrix, ecu, 0.02) for ecu in suppliers},
            {ecu: _datasheet(kmatrix, ecu, 0.60) for ecu in suppliers},
            {ecu: _datasheet(kmatrix, ecu, 0.10) for ecu in suppliers},
        ]
        return iterative_refinement(kmatrix, bus, requirement_rounds,
                                    datasheet_rounds)

    rounds = benchmark.pedantic(run_rounds, rounds=1, iterations=1)
    budget = max_tolerable_jitter_fraction(kmatrix, bus,
                                           controllers=controllers,
                                           upper_bound=1.0, tolerance=0.01)
    zero_jitter = analyze_schedulability(kmatrix, bus, controllers=controllers)

    rows = []
    for integration_round in rounds:
        violations = sum(len(result.violations)
                         for result in integration_round.contract_results)
        rows.append([integration_round.index, integration_round.description,
                     violations,
                     "yes" if integration_round.all_satisfied else "no"])

    with capsys.disabled():
        print()
        print(format_table(
            ["round", "design state", "violated clauses", "integration safe"],
            rows, title="Section 5.2 -- iterative refinement"))
        print()
        print(f"Remaining flexibility of the frozen design: global jitter "
              f"budget {budget.max_feasible_percent:.1f} % of the periods "
              f"(zero-jitter slack reserve "
              f"{zero_jitter.total_slack:.0f} ms across all messages).")

    # Round 1: optimistic placeholders satisfy the requirements; round 2 with
    # realistic-but-poor implementations violates them; round 3 recovers.
    assert rounds[0].all_satisfied
    assert not rounds[1].all_satisfied
    assert rounds[2].all_satisfied

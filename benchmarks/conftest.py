"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
artefacts (the case-study network and the optimized identifier assignment)
are computed once per session and shared, so the full benchmark run stays in
the "minutes, not hours" envelope the paper emphasises.
"""

from __future__ import annotations

import pytest

from repro.optimize import GeneticOptimizerConfig, optimize_priorities, paper_scenarios
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)


@pytest.fixture(scope="session")
def case_study():
    """The canonical case-study network: (kmatrix, bus, controllers)."""
    config = PowertrainConfig()
    return (
        powertrain_kmatrix(config),
        powertrain_bus(config),
        powertrain_controllers(config),
    )


@pytest.fixture(scope="session")
def optimized_case_study(case_study):
    """The GA-optimized identifier assignment used by Figure 5."""
    kmatrix, bus, controllers = case_study
    result = optimize_priorities(
        kmatrix,
        paper_scenarios(bus, controllers),
        GeneticOptimizerConfig(population_size=12, archive_size=6,
                               generations=4, seed=7),
    )
    return result

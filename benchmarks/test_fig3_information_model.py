"""Figure 3: information required for reliable schedulability analysis.

Paper: the analysis needs the K-Matrix (periods, lengths, IDs), the dynamic
send behaviour (jitters), the controller types, an error model and the
flashing/diagnosis traffic -- with only the K-Matrix reliably available to
the OEM.  The benchmark assembles exactly that information model, validates
it, and reports which share of the dynamic data would have to be assumed.
"""

from __future__ import annotations

from repro.core.system import BusSegment, SystemModel
from repro.diagnostics.traffic import DiagnosticSession, FlashingSession, kmatrix_with_diagnostics
from repro.experiments import WORST_CASE_ERRORS


def test_fig3_information_model(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study

    def assemble() -> SystemModel:
        extended = kmatrix_with_diagnostics(
            kmatrix,
            diagnostic_sessions=[DiagnosticSession(
                ecu="ECU1", request_id=0x7D0, response_id=0x7D8)],
            flashing_sessions=[FlashingSession(
                ecu="ECU2", data_id=0x7E0, ack_id=0x7E8)])
        system = SystemModel(name="power-train integration model",
                             controllers=dict(controllers))
        system.add_bus(BusSegment(bus=bus, kmatrix=extended,
                                  error_model=WORST_CASE_ERRORS,
                                  assumed_jitter_fraction=0.15))
        return system

    system = benchmark(assemble)
    problems = system.validate()
    segment = system.buses[bus.name]
    known_jitter = [m for m in segment.kmatrix if m.jitter is not None]
    unknown_jitter = segment.kmatrix.messages_with_unknown_jitter()

    with capsys.disabled():
        print()
        print("Figure 3 -- information required for schedulability analysis")
        print(system.describe())
        print(f"  K-Matrix rows (static OEM data) : {len(segment.kmatrix)}")
        print(f"  known send jitters (from ECUs)  : {len(known_jitter)}")
        print(f"  assumed send jitters            : {len(unknown_jitter)}")
        print(f"  controller types known          : {len(system.controllers)}")
        print(f"  error model                     : "
              f"{segment.error_model.describe()}")
        print("  diagnosis / flashing messages   : 4")
        print(f"  consistency problems            : {len(problems)}")

    assert problems == []
    # The paper's point: most dynamic data is not available and must be assumed.
    assert len(unknown_jitter) > len(known_jitter)

"""Section 4, experiment 1: zero jitters, no errors -- all deadlines met.

Paper: "In the first experiment, we assumed zero jitters and verified that
all messages will meet their deadlines. ... we could do such what-if
observations within minutes, without any simulation or test equipment."

The benchmark measures the full-matrix analysis time (the 'within minutes'
claim -- here it is milliseconds) and verifies the all-deadlines-met result.
"""

from __future__ import annotations

from repro.analysis.schedulability import analyze_schedulability
from repro.experiments import ZERO_JITTER_CASE
from repro.reporting.tables import format_table


def test_exp1_zero_jitter_verification(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study

    report = benchmark(
        analyze_schedulability, kmatrix,
        bus.with_bit_stuffing(ZERO_JITTER_CASE.bit_stuffing),
        ZERO_JITTER_CASE.error_model, 0.0, ZERO_JITTER_CASE.deadline_policy,
        controllers)

    tightest = sorted(report.verdicts, key=lambda v: v.slack)[:5]
    with capsys.disabled():
        print()
        print("Experiment 1 -- zero jitters, no errors")
        print(f"  messages analysed : {len(report.verdicts)}")
        print(f"  bus utilization   : {report.utilization:.1%}")
        print(f"  deadline misses   : {len(report.missed)}")
        print(f"  all deadlines met : {report.all_deadlines_met}  "
              f"(paper: yes)")
        print()
        print(format_table(
            ["tightest messages", "response [ms]", "deadline [ms]", "slack [ms]"],
            [[v.name, v.worst_case_response, v.deadline, v.slack]
             for v in tightest]))

    assert report.all_deadlines_met

"""Figure 2: complex communication patterns from jitters, bursts and errors.

Paper: a trace picture showing how message jitters, bursts and bus errors
create complex communication sequences that simple load models cannot
capture.  The benchmark runs the discrete-event simulator on the case-study
bus with jitter and burst errors and renders a window of the resulting trace
as an ASCII Gantt chart, reporting the pattern statistics.
"""

from __future__ import annotations

from repro.experiments import WORST_CASE_ERRORS
from repro.sim.simulator import CanBusSimulator, SimulationConfig


def test_fig2_communication_trace(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study

    def simulate():
        simulator = CanBusSimulator(
            kmatrix, bus, controllers=controllers,
            error_model=WORST_CASE_ERRORS,
            config=SimulationConfig(duration=2000.0, seed=2006,
                                    jitter_fraction=0.25))
        return simulator.run()

    trace = benchmark.pedantic(simulate, rounds=1, iterations=1)

    retransmissions = [t for t in trace.transmissions if not t.success]
    with capsys.disabled():
        print()
        print("Figure 2 -- communication pattern with jitters, bursts, errors")
        print(f"  simulated time        : {trace.duration:.0f} ms")
        print(f"  frame transmissions   : {len(trace.transmissions)}")
        print(f"  injected errors       : {len(trace.errors)}")
        print(f"  retransmissions       : {len(retransmissions)}")
        print(f"  sender-buffer losses  : {len(trace.losses)}")
        print(f"  observed bus load     : {trace.observed_utilization():.1%}")
        print()
        print(trace.render_gantt(window=(0.0, 12.0)))

    # The pattern must show the paper's ingredients: interleaved frames and
    # error-induced retransmissions.
    assert len(trace.transmissions) > 1000
    assert retransmissions, "burst errors must cause retransmissions"
    assert trace.observed_utilization() > 0.3

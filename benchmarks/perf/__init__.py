"""Seed-vs-kernel wall-clock benchmark suite (see run_bench.py)."""

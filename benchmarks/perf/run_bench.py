#!/usr/bin/env python
"""Deterministic seed-vs-kernel timing suite.

Runs four scenarios that dominate the paper's reproduction workload, timing
the retained naive analysis path (:mod:`repro.analysis.reference`, the seed
formulation) against the optimised kernel
(:mod:`repro.analysis.response_time` with warm starts threaded through the
sweeps), and writes the results to ``BENCH_timing.json`` at the repo root:

* ``analyze_all_powertrain80`` -- one cold full-matrix analysis of the
  80-message power-train case study;
* ``jitter_sweep_13pt`` -- the 13-point Figure-4 jitter sweep over the full
  matrix (warm-started in the kernel path);
* ``scaling_n{50,100,200,400}`` -- cold full-matrix analyses of synthetic
  K-Matrices with the bus bit rate scaled to hold utilization roughly
  constant (see :func:`repro.workloads.scaling.scaling_benchmark_case`);
* ``ga_run`` -- a small SPEA2 optimisation of the case study
  (population 12, 4 generations) across the four paper scenarios.

A ``service`` section measures the what-if service layer.  Here the "seed"
column is **not** the naive reference path but 100 *independent kernel*
``analyze_all`` runs -- the strongest baseline a client without the session
cache could use:

* ``service_jitter_whatif_100q`` -- a 100-query what-if sweep of one
  mid-priority message's send jitter through a cached
  :class:`~repro.service.session.AnalysisSession`; gated at >= 5x
  (``min_speedup``) under ``--check``;
* ``service_fraction_sweep_100q`` -- a 100-point global assumed-jitter
  sweep through the same session machinery (informational);
* ``service_cold_session`` -- one cold session construction + base
  analysis, bounding the session overhead on a cache-less query;
* ``obs_overhead_parity`` -- the 100-query sweep through an
  *instrumented* session (live :class:`~repro.obs.MetricsRegistry` plus
  one :class:`~repro.obs.Trace` per query) vs the uninstrumented
  session; gated at >= 0.95x under ``--check``, i.e. observability must
  stay within ~5% of free;
* ``monitor_ingest_overhead`` -- a recorded simulation trace replayed in
  chunks through a bare :class:`~repro.monitor.ConformanceMonitor` vs a
  fully equipped one (registry counters, alert rules, violation trace
  ring); gated at >= 0.95x under ``--check``, so live monitoring
  observability also stays within ~5% of the conformance check itself.

A ``server`` section measures the analysis daemon and the engine-on-sessions
refactor (the PR 4 subsystem); the "seed" columns are again the strongest
non-cached kernel baselines:

* ``server_whatif_throughput`` -- the same 100-query jitter sweep issued by
  an :class:`~repro.server.client.InProcessClient` through the daemon's
  full JSON protocol (encode, queue, session pool, decode) vs 100
  independent cold kernel ``analyze_all`` runs; gated at >= 2x under
  ``--check``;
* ``engine_incremental`` -- the daemon's system-serving pattern on a
  6-bus gateway chain: one cold compositional fixed point plus two
  re-analyses after an upstream jitter edit, through one persistent
  engine whose per-segment sessions answer event-model deltas
  incrementally, vs the same three fixed points on the
  rebuild-per-iteration path (``incremental=False``, the pre-refactor
  engine).  Bit-identical by assertion and gated at >= 2x under
  ``--check``; the single-cold-run ratio is recorded as
  ``cold_run_speedup`` for reference.
* ``daemon_restart_warm`` -- the persistent result store (PR 9): a fresh
  daemon booted onto a store directory that a previous daemon generation
  already populated answers a system analysis plus two topology what-if
  queries from disk (decode + validate) instead of re-running the
  compositional fixed point, vs an identical fresh daemon without a
  store.  Responses are asserted bit-identical (modulo the cache-hit
  stats block) and gated at >= 3x under ``--check``;
* ``system_whatif`` -- the system-level what-if layer (PR 5): a sweep of
  typed topology deltas (bus-speed degradation, gateway config edits,
  per-segment jitter edits, a gateway failover, a message re-map) plus
  end-to-end path latencies per step, answered by one
  :class:`~repro.whatif.session.SystemSession` with shared per-segment
  sessions, vs one from-scratch ``incremental=False`` engine run per
  delta on the equivalently edited model.  Per-message results and path
  latencies are asserted bit-identical; gated at >= 2x under ``--check``.

All workloads are seeded and the analyses are exact, so both paths produce
**identical results** -- the suite asserts this before trusting any timing.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # rewrite baseline
    PYTHONPATH=src python benchmarks/perf/run_bench.py --check    # CI regression gate
    PYTHONPATH=src python benchmarks/perf/run_bench.py --check --quick  # CI budget

``--check`` compares fresh kernel timings against the committed baseline and
exits non-zero when any scenario is more than ``--threshold`` (default 2.0)
times slower; the gate is skipped (exit 0) when no baseline exists yet.
``--skip-seed`` reuses the baseline's seed timings instead of re-running the
slow reference path (useful for quick iteration).  ``--quick`` is the CI
preset: best-of-2 timings, ``--skip-seed`` implied (except for scenarios
carrying a ``min_speedup`` floor, whose seed-vs-kernel ratio is only fair
when both sides are timed in the same run) and ``ga_run`` skipped, with
every remaining workload byte-identical so the gate stays comparable.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reference import ReferenceCanBusAnalysis  # noqa: E402
from repro.can.kmatrix import KMatrix  # noqa: E402
from repro.analysis.response_time import CanBusAnalysis  # noqa: E402
from repro.optimize.genetic import (  # noqa: E402
    GeneticOptimizerConfig,
    optimize_priorities,
)
from repro.optimize.objectives import paper_scenarios  # noqa: E402
from repro.sensitivity.jitter import (  # noqa: E402
    DEFAULT_JITTER_FRACTIONS,
    jitter_sensitivity_all,
)
from repro.workloads.powertrain import (  # noqa: E402
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)
from repro.core.engine import CompositionalAnalysis  # noqa: E402
from repro.monitor import (  # noqa: E402
    AlertRule,
    ConformanceMonitor,
    chunked,
    frames_from_trace,
)
from repro.obs import MetricsRegistry, Trace, TraceRing  # noqa: E402
from repro.sim import CanBusSimulator, SimulationConfig  # noqa: E402
from repro.server import AnalysisDaemon, InProcessClient  # noqa: E402
from repro.service import (  # noqa: E402
    AnalysisSession,
    BusConfiguration,
    JitterDelta,
)
from repro.core.paths import path_latency_all  # noqa: E402
from repro.whatif import (  # noqa: E402
    AddGatewayRouteDelta,
    BusSpeedDelta,
    GatewayConfigDelta,
    MoveMessageDelta,
    RemoveGatewayRouteDelta,
    SegmentConfigDelta,
    SystemSession,
    apply_system_deltas,
)
from repro.workloads.multibus import (  # noqa: E402
    multibus_paths,
    multibus_system,
)
from repro.store import ResultStore  # noqa: E402
from repro.workloads.scaling import scaling_benchmark_case  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_timing.json"
SCALING_SIZES = (50, 100, 200, 400)
GA_CONFIG = dict(population_size=12, archive_size=6, generations=4, seed=7)
SERVICE_QUERIES = 100
SERVICE_MIN_SPEEDUP = 5.0
SERVER_MIN_SPEEDUP = 2.0
ENGINE_BUSES = 6
ENGINE_MESSAGES_PER_BUS = 40
ENGINE_MIN_SPEEDUP = 2.0
WHATIF_BUSES = 5
WHATIF_MESSAGES_PER_BUS = 30
WHATIF_MIN_SPEEDUP = 2.0
RESTART_BUSES = 5
RESTART_MESSAGES_PER_BUS = 30
RESTART_MIN_SPEEDUP = 3.0
# Instrumented vs uninstrumented parity: metrics + tracing may cost at
# most ~5% on the session what-if sweep (speedup floor below 1.0).
OBS_MIN_SPEEDUP = 0.95


def _timed(fn, repeat: int):
    """Best-of-``repeat`` wall-clock time and the last result."""
    best = None
    result = None
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _case_study():
    config = PowertrainConfig(n_messages=80)
    return (powertrain_kmatrix(config), powertrain_bus(config),
            powertrain_controllers(config))


def run_scenarios(repeat: int, skip_seed: bool,
                  baseline: dict | None,
                  quick: bool = False) -> dict[str, dict]:
    """Run every scenario; returns name -> timing record.

    ``quick`` drops ``ga_run`` (the slowest kernel-side scenario); every
    other workload is kept byte-identical so kernel timings stay comparable
    against the committed baseline, and the regression gate simply skips
    scenarios missing from the fresh run.
    """
    kmatrix, bus, controllers = _case_study()
    scenarios: dict[str, dict] = {}

    def record(name: str, seed_fn, kernel_fn, check_equal=None, **extra):
        kernel_seconds, kernel_result = _timed(kernel_fn, repeat)
        baseline_entry = (baseline or {}).get("scenarios", {}).get(name, {})
        # min_speedup scenarios gate on the seed/kernel *ratio*, so both
        # sides must come from the same run: mixing a reused quiet-machine
        # seed timing with a fresh kernel timing makes the ratio track
        # runner noise instead of the code.  Their seed side is cheap
        # (it is the kernel itself, run query-by-query), so always time it.
        reuse_seed = (skip_seed and "min_speedup" not in extra
                      and "seed_seconds" in baseline_entry)
        if reuse_seed:
            seed_seconds = baseline_entry["seed_seconds"]
        else:
            # Same best-of policy as the kernel path, so the reported
            # speedup is not inflated by scheduling noise on the seed side.
            seed_seconds, seed_result = _timed(seed_fn, repeat)
            if check_equal is not None:
                check_equal(seed_result, kernel_result)
        scenarios[name] = {
            "seed_seconds": round(seed_seconds, 6),
            "kernel_seconds": round(kernel_seconds, 6),
            "speedup": round(seed_seconds / kernel_seconds, 2),
            **extra,
        }
        print(f"  {name:24s} seed {seed_seconds:8.3f}s   "
              f"kernel {kernel_seconds:8.3f}s   "
              f"speedup {seed_seconds / kernel_seconds:6.1f}x")

    def assert_identical(seed_result, kernel_result):
        if seed_result != kernel_result:
            raise AssertionError(
                "seed and kernel paths disagree -- timing aborted")

    # 1. Cold full-matrix analysis of the case study.
    record(
        "analyze_all_powertrain80",
        lambda: ReferenceCanBusAnalysis(
            kmatrix, bus, assumed_jitter_fraction=0.15,
            controllers=controllers).analyze_all(),
        lambda: CanBusAnalysis(
            kmatrix, bus, assumed_jitter_fraction=0.15,
            controllers=controllers).analyze_all(),
        check_equal=assert_identical,
        n_messages=len(kmatrix),
    )

    # 2. The 13-point Figure-4 jitter sweep (warm-started kernel path).
    def seed_sweep():
        return [
            ReferenceCanBusAnalysis(
                kmatrix, bus, assumed_jitter_fraction=fraction,
                controllers=controllers).analyze_all()
            for fraction in DEFAULT_JITTER_FRACTIONS
        ]

    def kernel_sweep():
        return jitter_sensitivity_all(kmatrix, bus, controllers=controllers)

    def check_sweep(seed_result, kernel_result):
        for index, per_point in enumerate(seed_result):
            for name, response in per_point.items():
                got = kernel_result[name].response_times[index]
                want = response.worst_case
                if got != want:
                    raise AssertionError(
                        f"sweep mismatch at point {index}, message {name}")

    record("jitter_sweep_13pt", seed_sweep, kernel_sweep,
           check_equal=check_sweep,
           n_messages=len(kmatrix), points=len(DEFAULT_JITTER_FRACTIONS))

    # 3. Scaling sweep: cold analyses at constant utilization.
    for size in SCALING_SIZES:
        scaled_kmatrix, scaled_bus = scaling_benchmark_case(size)
        record(
            f"scaling_n{size}",
            lambda k=scaled_kmatrix, b=scaled_bus:
                ReferenceCanBusAnalysis(k, b).analyze_all(),
            lambda k=scaled_kmatrix, b=scaled_bus:
                CanBusAnalysis(k, b).analyze_all(),
            check_equal=assert_identical,
            n_messages=size,
        )

    # 4. One small GA run (objective values are asserted identical).
    if quick:
        print("  ga_run                   skipped (--quick)")
    else:
        ga_scenarios = paper_scenarios(bus, controllers)

        def seed_ga():
            return optimize_priorities(
                kmatrix, ga_scenarios,
                GeneticOptimizerConfig(**GA_CONFIG,
                                       analysis_backend="reference"))

        def kernel_ga():
            return optimize_priorities(kmatrix, ga_scenarios,
                                       GeneticOptimizerConfig(**GA_CONFIG))

        def check_ga(seed_result, kernel_result):
            if (seed_result.best_evaluation != kernel_result.best_evaluation
                    or seed_result.history != kernel_result.history
                    or seed_result.evaluations != kernel_result.evaluations):
                raise AssertionError("GA backends disagree -- timing aborted")

        record("ga_run", seed_ga, kernel_ga, check_equal=check_ga,
               n_messages=len(kmatrix), **GA_CONFIG)

    # 5. Service layer: cached-delta what-if queries vs INDEPENDENT kernel
    # analyses (the "seed" column is the kernel itself here, not the naive
    # reference path -- see the module docstring).  The what-if victim is
    # the median-priority message: everything below it is re-analysed per
    # query, everything above comes straight from the session cache.
    priority_order = kmatrix.sorted_by_priority()
    victim = priority_order[len(priority_order) // 2]
    base_jitter = victim.jitter or 0.0
    jitters = [base_jitter + 0.002 * i * victim.period
               for i in range(SERVICE_QUERIES)]

    def independent_whatif():
        results = []
        for jitter in jitters:
            mutated = kmatrix.map_messages(
                lambda m, j=jitter: m.with_jitter(j)
                if m.name == victim.name else m)
            results.append(CanBusAnalysis(
                mutated, bus, assumed_jitter_fraction=0.15,
                controllers=controllers).analyze_all())
        return results

    def session_whatif():
        session = AnalysisSession(kmatrix, bus, assumed_jitter_fraction=0.15,
                                  controllers=controllers)
        results, previous = [], None
        for jitter in jitters:
            previous = session.query(
                (JitterDelta(message_name=victim.name, jitter=jitter),),
                warm_from=previous, with_report=False)
            results.append(previous.results)
        return results

    record("service_jitter_whatif_100q", independent_whatif, session_whatif,
           check_equal=assert_identical, n_messages=len(kmatrix),
           queries=SERVICE_QUERIES, victim=victim.name,
           baseline="independent kernel analyze_all",
           min_speedup=SERVICE_MIN_SPEEDUP)

    fractions = [round(0.006 * i, 4) for i in range(SERVICE_QUERIES)]

    def independent_fraction_sweep():
        return [CanBusAnalysis(kmatrix, bus, assumed_jitter_fraction=fraction,
                               controllers=controllers).analyze_all()
                for fraction in fractions]

    def session_fraction_sweep():
        session = AnalysisSession(
            kmatrix, bus, assumed_jitter_fraction=fractions[0],
            controllers=controllers)
        results, previous = [], None
        for fraction in fractions:
            previous = session.query((JitterDelta(fraction=fraction),),
                                     warm_from=previous, with_report=False)
            results.append(previous.results)
        return results

    record("service_fraction_sweep_100q", independent_fraction_sweep,
           session_fraction_sweep, check_equal=assert_identical,
           n_messages=len(kmatrix), queries=SERVICE_QUERIES,
           baseline="independent kernel analyze_all")

    def plain_cold():
        return CanBusAnalysis(kmatrix, bus, assumed_jitter_fraction=0.15,
                              controllers=controllers).analyze_all()

    def session_cold():
        # with_report=False keeps the comparison apples-to-apples: the
        # plain-kernel baseline does not build a schedulability report.
        return AnalysisSession(
            kmatrix, bus, assumed_jitter_fraction=0.15,
            controllers=controllers).query((), with_report=False).results

    record("service_cold_session", plain_cold, session_cold,
           check_equal=assert_identical, n_messages=len(kmatrix),
           baseline="plain kernel analyze_all")

    # 5b. Observability overhead parity: the same 100-query jitter sweep
    # through an *instrumented* session (a live MetricsRegistry plus one
    # Trace with session spans per query -- what every daemon request
    # pays) vs the uninstrumented session of (5).  The "speedup" is the
    # uninstrumented/instrumented ratio, gated at >= 0.95x: metrics and
    # tracing must stay within ~5% of free, or the PR 6/7 serving gains
    # are being paid back in bookkeeping.
    def uninstrumented_whatif():
        return session_whatif()

    def instrumented_whatif():
        registry = MetricsRegistry()
        session = AnalysisSession(kmatrix, bus, assumed_jitter_fraction=0.15,
                                  controllers=controllers, metrics=registry)
        results, previous = [], None
        for jitter in jitters:
            trace = Trace(op="query", target="case")
            previous = session.query(
                (JitterDelta(message_name=victim.name, jitter=jitter),),
                warm_from=previous, with_report=False, trace=trace)
            trace.finish()
            results.append(previous.results)
        return results

    record("obs_overhead_parity", uninstrumented_whatif, instrumented_whatif,
           check_equal=assert_identical, n_messages=len(kmatrix),
           queries=SERVICE_QUERIES, victim=victim.name,
           baseline="uninstrumented session sweep",
           min_speedup=OBS_MIN_SPEEDUP)

    # 5c. Monitor ingest overhead: the same recorded trace replayed in
    # chunks through a *bare* conformance monitor (conformance checks
    # only) vs a fully equipped one (live MetricsRegistry counters,
    # alert rules, violation trace ring) -- what every `monitor_ingest`
    # request pays for the observability attached to it.  Gated at
    # >= 0.95x like obs_overhead_parity: alerting, windowed history and
    # counters must stay within ~5% of the bare conformance check.
    monitor_trace = CanBusSimulator(
        kmatrix, bus, controllers=controllers,
        config=SimulationConfig(duration=1500.0, seed=11)).run()
    monitor_frames = frames_from_trace(monitor_trace)

    def replay_monitor(monitor):
        for chunk in chunked(monitor_frames, 256):
            monitor.ingest(chunk)
        monitor.flush()
        status = monitor.status()
        return (status["frames"], status["violations"], status["refits"])

    def bare_monitor_replay():
        session = AnalysisSession(kmatrix, bus, assumed_jitter_fraction=0.15,
                                  controllers=controllers)
        return replay_monitor(ConformanceMonitor(session, target="bench"))

    def equipped_monitor_replay():
        # Registry on the monitor only: session instrumentation overhead
        # is obs_overhead_parity's subject, not this scenario's.
        registry = MetricsRegistry()
        session = AnalysisSession(kmatrix, bus, assumed_jitter_fraction=0.15,
                                  controllers=controllers)
        rules = (
            AlertRule.parse("any-violation", "violations > 0"),
            AlertRule.parse(
                "tight-slack",
                "observed_slack_ms < 0.05*deadline for 2 windows"),
        )
        monitor = ConformanceMonitor(
            session, target="bench", rules=rules, metrics=registry,
            trace_ring=TraceRing(16))
        return replay_monitor(monitor)

    record("monitor_ingest_overhead", bare_monitor_replay,
           equipped_monitor_replay, check_equal=assert_identical,
           n_messages=len(kmatrix), frames=len(monitor_frames),
           baseline="bare conformance monitor replay",
           min_speedup=OBS_MIN_SPEEDUP)

    # 6. Daemon throughput: the 100-query jitter sweep again, but through
    # the full serving stack (JSON protocol both ways, job accounting,
    # sharded session pool) vs the independent-kernel baseline of (5).
    def daemon_whatif():
        daemon = AnalysisDaemon(name="bench-daemon")
        daemon.add_config("case", BusConfiguration(
            kmatrix=kmatrix, bus=bus, assumed_jitter_fraction=0.15,
            controllers=controllers))
        client = InProcessClient(daemon)
        results = []
        for jitter in jitters:
            response = client.query(
                "case",
                (JitterDelta(message_name=victim.name, jitter=jitter),),
                with_report=False)
            results.append({name: entry["worst_case"]
                            for name, entry in response["results"].items()})
        daemon.close()
        return results

    def independent_worst_cases():
        results = []
        for analysis in independent_whatif():
            results.append({
                name: result.worst_case if result.bounded else None
                for name, result in analysis.items()})
        return results

    record("server_whatif_throughput", independent_worst_cases,
           daemon_whatif, check_equal=assert_identical,
           n_messages=len(kmatrix), queries=SERVICE_QUERIES,
           victim=victim.name,
           baseline="independent kernel analyze_all",
           min_speedup=SERVER_MIN_SPEEDUP)

    # 7. Incremental compositional engine: the daemon's system-serving
    # pattern -- one cold global fixed point of a gateway chain plus two
    # re-analyses after an upstream jitter edit, against one persistent
    # engine whose per-segment sessions answer event-model deltas
    # incrementally vs rebuilding every bus analysis per iteration.
    engine_system = multibus_system(
        n_buses=ENGINE_BUSES, messages_per_bus=ENGINE_MESSAGES_PER_BUS,
        seed=3)
    engine_segment = engine_system.buses["CAN-0"]
    engine_victim = engine_segment.kmatrix.sorted_by_priority()[0]
    base_matrix = engine_segment.kmatrix
    kmatrix_variants = [base_matrix]
    for bump in (0.05, 0.10):
        kmatrix_variants.append(KMatrix(messages=[
            replace(m, jitter=(m.jitter or 0.0) + bump * m.period)
            if m.name == engine_victim.name else m
            for m in base_matrix.messages]))

    def engine_on_sessions():
        engine_segment.kmatrix = base_matrix
        engine = CompositionalAnalysis(engine_system)
        outcomes = []
        for variant in kmatrix_variants:
            engine_segment.kmatrix = variant
            outcomes.append(engine.run().message_results)
        engine_segment.kmatrix = base_matrix
        return outcomes

    def engine_rebuild():
        outcomes = []
        for variant in kmatrix_variants:
            engine_segment.kmatrix = variant
            outcomes.append(CompositionalAnalysis(
                engine_system, incremental=False).run().message_results)
        engine_segment.kmatrix = base_matrix
        return outcomes

    # Single cold fixed point, sessions vs rebuild (informational).
    cold_session_seconds, _ = _timed(
        lambda: CompositionalAnalysis(engine_system).run(), repeat)
    cold_rebuild_seconds, _ = _timed(
        lambda: CompositionalAnalysis(
            engine_system, incremental=False).run(), repeat)

    record("engine_incremental", engine_rebuild, engine_on_sessions,
           check_equal=assert_identical,
           n_buses=ENGINE_BUSES,
           messages_per_bus=ENGINE_MESSAGES_PER_BUS,
           requests=len(kmatrix_variants),
           baseline="rebuild-per-iteration engine (incremental=False)",
           cold_run_speedup=round(
               cold_rebuild_seconds / cold_session_seconds, 2),
           min_speedup=ENGINE_MIN_SPEEDUP)

    # 8. System-level what-if: a topology exploration sweep (bus-speed
    # degradation, gateway edits, per-segment jitter edits, a failover, a
    # message re-map) with per-step end-to-end path latencies, through one
    # SystemSession vs one from-scratch rebuild engine run per delta.
    whatif_system = multibus_system(
        n_buses=WHATIF_BUSES, messages_per_bus=WHATIF_MESSAGES_PER_BUS,
        seed=5)
    whatif_paths = multibus_paths(whatif_system)
    gw_route = whatif_system.gateways["GW2"].routes[0]
    leaf_bus = f"CAN-{WHATIF_BUSES - 1}"
    movable = whatif_system.buses[leaf_bus].kmatrix.sorted_by_priority()[-1]
    free_id = max(
        m.can_id for m in whatif_system.buses["CAN-1"].kmatrix) + 21
    base_rate = whatif_system.buses["CAN-1"].bus.bit_rate_bps
    whatif_queries = [()]
    whatif_queries.extend(
        (BusSpeedDelta("CAN-1", base_rate * factor),)
        for factor in (0.9, 0.8, 0.7, 0.6))
    whatif_queries.extend(
        (GatewayConfigDelta("GW1", polling_period=2.5 * factor),)
        for factor in (2.0, 3.0))
    whatif_queries.extend(
        (SegmentConfigDelta("CAN-0", (JitterDelta(fraction=fraction),)),)
        for fraction in (0.2, 0.3))
    # Leaf-bus edits: nothing downstream, so four of the five shards are
    # provably cache-served -- the sweet spot of per-segment sharding.
    whatif_queries.extend(
        (SegmentConfigDelta(leaf_bus, (JitterDelta(fraction=fraction),)),)
        for fraction in (0.15, 0.25, 0.35))
    whatif_queries.append(
        (BusSpeedDelta(leaf_bus, base_rate * 0.85),))
    whatif_queries.append((
        RemoveGatewayRouteDelta("GW2", gw_route.destination_message),
        AddGatewayRouteDelta("GW2-backup", gw_route, polling_period=5.0)))
    whatif_queries.append(
        (MoveMessageDelta(movable.name, "CAN-1", new_can_id=free_id),))

    def whatif_session_sweep():
        session = SystemSession(whatif_system)
        outcomes = []
        for deltas in whatif_queries:
            outcome = session.query(deltas)
            latencies = session.path_latency(whatif_paths, deltas)
            outcomes.append((outcome.result.message_results, latencies))
        return outcomes

    def whatif_rebuild_sweep():
        outcomes = []
        for deltas in whatif_queries:
            edited = apply_system_deltas(whatif_system, deltas)
            result = CompositionalAnalysis(
                edited, incremental=False).run()
            outcomes.append((result.message_results,
                             path_latency_all(whatif_paths, edited, result)))
        return outcomes

    record("system_whatif", whatif_rebuild_sweep, whatif_session_sweep,
           check_equal=assert_identical,
           n_buses=WHATIF_BUSES,
           messages_per_bus=WHATIF_MESSAGES_PER_BUS,
           queries=len(whatif_queries),
           paths=len(whatif_paths),
           baseline="from-scratch engine run per delta (incremental=False)",
           min_speedup=WHATIF_MIN_SPEEDUP)

    # 9. Warm restart through the persistent result store: a rebooted
    # daemon pointed at a store directory a previous generation already
    # populated answers the same system requests from disk (decode +
    # validate), skipping the compositional fixed point entirely.  The
    # seed side is the identical daemon without a store -- exactly what a
    # restart costs today without persistence.  The warm-up daemon that
    # publishes the entries runs outside the timed region.
    restart_system = multibus_system(
        n_buses=RESTART_BUSES, messages_per_bus=RESTART_MESSAGES_PER_BUS,
        seed=11)
    restart_rate = restart_system.buses["CAN-1"].bus.bit_rate_bps
    restart_queries = [
        (BusSpeedDelta("CAN-1", restart_rate * 0.8),),
        (SegmentConfigDelta("CAN-0", (JitterDelta(fraction=0.25),)),),
    ]

    def restart_requests(store):
        daemon = AnalysisDaemon(name="restart-bench", store=store)
        daemon.add_system("fleet", restart_system)
        client = InProcessClient(daemon)
        outcomes = [client.analyze_system("fleet")]
        for deltas in restart_queries:
            response = client.system_query("fleet", deltas)
            # The stats block legitimately differs (the warm daemon
            # reports a cache hit); everything numeric must be identical.
            response.pop("stats", None)
            outcomes.append(response)
        daemon.close()
        return outcomes

    store_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        restart_requests(ResultStore(store_dir))  # untimed warm-up publish
        record("daemon_restart_warm",
               lambda: restart_requests(None),
               lambda: restart_requests(ResultStore(store_dir)),
               check_equal=assert_identical,
               n_buses=RESTART_BUSES,
               messages_per_bus=RESTART_MESSAGES_PER_BUS,
               requests=1 + len(restart_queries),
               baseline="cold daemon re-solving after restart",
               min_speedup=RESTART_MIN_SPEEDUP)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    return scenarios


def check_regression(fresh: dict[str, dict], baseline: dict,
                     threshold: float,
                     speedup_margin: float = 1.0) -> list[str]:
    """Scenario names whose kernel time regressed beyond the threshold,
    plus scenarios that fell below their declared minimum speedup (the
    service layer's >= 5x cached-query target).

    ``speedup_margin`` scales the min_speedup floors before comparing
    (``--quick`` passes 0.9): both sides of a gated ratio are timed in
    the same run (see ``run_scenarios``), so machine speed cancels, but
    a CPU-steal spike can still land on one side of a sub-second
    scenario.  A real regression lands far below the scaled floor.
    """
    failures = []
    for name, entry in baseline.get("scenarios", {}).items():
        old = entry.get("kernel_seconds")
        new = fresh.get(name, {}).get("kernel_seconds")
        if not old or not new:
            continue
        if new > threshold * old:
            failures.append(
                f"{name}: kernel {new:.3f}s vs baseline {old:.3f}s "
                f"(> {threshold:.1f}x)")
    for name, entry in fresh.items():
        minimum = entry.get("min_speedup")
        if minimum and entry.get("speedup", 0.0) < minimum * speedup_margin:
            failures.append(
                f"{name}: speedup {entry.get('speedup', 0.0):.1f}x below "
                f"the required {minimum * speedup_margin:.1f}x "
                f"({minimum:.1f}x floor, {speedup_margin:.0%} margin)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="where to write the timing JSON")
    parser.add_argument("--check", action="store_true",
                        help="fail when a scenario regresses vs the baseline")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="allowed kernel slow-down factor for --check")
    parser.add_argument("--repeat", type=int, default=2,
                        help="best-of repetitions for kernel timings")
    parser.add_argument("--skip-seed", action="store_true",
                        help="reuse baseline seed timings (skip slow path)")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: best-of-2 timings, baseline seed "
                             "timings reused for the reference-path "
                             "scenarios (min_speedup scenarios time both "
                             "sides), ga_run skipped; combine with --check")
    args = parser.parse_args(argv)
    if args.quick:
        # Best-of-2, not best-of-1: the min_speedup floors leave ~20%
        # headroom and a single noisy timing on a shared runner blows
        # through that.  Seed timings (the slow side) stay reused.
        args.repeat = 2
        args.skip_seed = True

    baseline = None
    if args.output.exists():
        baseline = json.loads(args.output.read_text(encoding="utf-8"))

    print("Running seed-vs-kernel timing suite "
          "(REPRO_PARALLEL=%s)..." % (os.environ.get("REPRO_PARALLEL", "auto")))
    scenarios = run_scenarios(args.repeat, args.skip_seed, baseline,
                              quick=args.quick)

    if args.check:
        if baseline is None:
            print("no committed baseline -- regression gate skipped")
            return 0
        failures = check_regression(
            scenarios, baseline, args.threshold,
            speedup_margin=0.9 if args.quick else 1.0)
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print("  " + failure)
            return 1
        print(f"regression gate passed (threshold {args.threshold:.1f}x)")
        return 0

    payload = {
        "schema": 1,
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "scenarios": scenarios,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 5: message loss due to jitter, before and after optimization.

Paper claims reproduced here:

* best case (no errors): no message lost until the jitters exceed roughly a
  quarter of the periods, then slightly increasing loss;
* worst case (burst errors + bit stuffing + minimum re-arrival deadlines):
  deadline violations already at very small jitters, increasing rapidly;
* after the genetic CAN-ID optimization: "a system that does not loose a
  single message at 25 % jitter, even in the presence of errors and bit
  stuffing", with the optimized curves below the original ones.
"""

from __future__ import annotations

from repro.experiments import BEST_CASE, JITTER_SWEEP_FRACTIONS, WORST_CASE
from repro.reporting.tables import format_loss_curves


def test_fig5_message_loss_curves(benchmark, case_study, optimized_case_study,
                                  capsys):
    kmatrix, bus, controllers = case_study
    optimized = optimized_case_study.best_kmatrix

    def sweep_all_curves():
        return {
            "non-opt. best case": BEST_CASE.loss_curve(
                kmatrix, bus, JITTER_SWEEP_FRACTIONS, controllers),
            "non-opt. worst case": WORST_CASE.loss_curve(
                kmatrix, bus, JITTER_SWEEP_FRACTIONS, controllers),
            "optimized best case": BEST_CASE.loss_curve(
                optimized, bus, JITTER_SWEEP_FRACTIONS, controllers),
            "optimized worst case": WORST_CASE.loss_curve(
                optimized, bus, JITTER_SWEEP_FRACTIONS, controllers),
        }

    curves = benchmark.pedantic(sweep_all_curves, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(optimized_case_study.describe())
        print(format_loss_curves(
            curves, title="Figure 5 -- message loss due to jitter "
                          "before and after optimization"))

    as_dict = {name: dict(points) for name, points in curves.items()}

    # Original best case: loss-free at small jitters, some loss at 60 %.
    assert as_dict["non-opt. best case"][0.0] == 0.0
    assert as_dict["non-opt. best case"][0.25] == 0.0

    # Original worst case: loss starts at very small jitters and grows fast.
    assert as_dict["non-opt. worst case"][0.05] > 0.0
    assert as_dict["non-opt. worst case"][0.60] > 0.3
    assert as_dict["non-opt. worst case"][0.60] > \
        as_dict["non-opt. worst case"][0.25]

    # Optimized system: no loss at 25 % jitter even in the worst case.
    assert as_dict["optimized worst case"][0.25] == 0.0
    assert as_dict["optimized best case"][0.25] == 0.0

    # Optimized curves never lose more than the original ones within the
    # optimization target region (the optimizer was asked to be robust up to
    # 25 % jitter, mirroring the paper; beyond that the curves may cross).
    for fraction in JITTER_SWEEP_FRACTIONS:
        if fraction > 0.25:
            continue
        assert as_dict["optimized worst case"][fraction] <= \
            as_dict["non-opt. worst case"][fraction] + 1e-9
        assert as_dict["optimized best case"][fraction] <= \
            as_dict["non-opt. best case"][fraction] + 1e-9

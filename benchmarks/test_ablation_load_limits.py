"""Ablation: the "40 % vs 60 % bus-load limit" discussion of Section 3.1.

Paper: OEMs disagree about a critical bus-load limit (40 % or 60 %) precisely
because average load does not determine schedulability.  The benchmark builds
matrices at increasing target utilizations with two identifier policies and
shows that the deadline-miss onset depends on the priority assignment, not on
a single load threshold.
"""

from __future__ import annotations

from repro.analysis.load import bus_load
from repro.analysis.schedulability import analyze_schedulability
from repro.reporting.tables import format_table
from repro.workloads.scaling import scaled_kmatrix


TARGETS = (0.30, 0.40, 0.50, 0.60, 0.70)


def test_ablation_load_limit_myth(benchmark, case_study, capsys):
    _kmatrix, bus, _controllers = case_study

    def sweep():
        rows = []
        for target in TARGETS:
            for policy in ("rate-monotonic", "block"):
                kmatrix = scaled_kmatrix(target, bus, seed=31, id_policy=policy)
                load = bus_load(kmatrix, bus)
                report = analyze_schedulability(
                    kmatrix, bus, assumed_jitter_fraction=0.25,
                    deadline_policy="min-rearrival")
                rows.append([f"{target:.0%}", policy, load.utilization,
                             report.loss_fraction])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(format_table(
            ["target load", "id policy", "actual load %", "message loss %"],
            rows, title="Ablation -- load alone does not decide "
                        "schedulability (25 % jitter, strict deadlines)"))

    by_key = {(row[0], row[1]): row[3] for row in rows}
    # A well-prioritised 60 % bus can be loss-free while a badly prioritised
    # one at the same load loses messages -- the reason OEM limits disagree.
    assert by_key[("60%", "rate-monotonic")] <= by_key[("60%", "block")]
    assert any(loss > 0.0 for (_t, policy), loss in by_key.items()
               if policy == "block")

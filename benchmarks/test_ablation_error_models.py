"""Ablation: error-model choice (none vs. sporadic vs. burst) and its impact.

Paper (Section 4): "We also considered different types of bus error models
that lead to retransmissions": the sporadic (MTBF-style) model of [7] and the
burst model of [8].  The benchmark quantifies how each model shifts response
times and message loss at a fixed 25 % jitter assumption.
"""

from __future__ import annotations

from repro.analysis.schedulability import analyze_schedulability
from repro.errors.models import BurstErrorModel, NoErrors, SporadicErrorModel
from repro.reporting.tables import format_table


MODELS = (
    ("no errors", NoErrors()),
    ("sporadic, 1 per 200 ms", SporadicErrorModel(min_interarrival=200.0)),
    ("sporadic, 1 per 50 ms", SporadicErrorModel(min_interarrival=50.0)),
    ("burst of 3 per 50 ms", BurstErrorModel(min_interarrival=50.0,
                                             burst_length=3,
                                             intra_burst_gap=0.5)),
    ("burst of 5 per 50 ms", BurstErrorModel(min_interarrival=50.0,
                                             burst_length=5,
                                             intra_burst_gap=0.5)),
)


def test_ablation_error_models(benchmark, case_study, capsys):
    kmatrix, bus, controllers = case_study

    def sweep():
        rows = []
        for label, model in MODELS:
            report = analyze_schedulability(
                kmatrix, bus, error_model=model,
                assumed_jitter_fraction=0.25,
                deadline_policy="min-rearrival", controllers=controllers)
            worst_response = max(v.worst_case_response for v in report.verdicts)
            rows.append([label, worst_response, report.loss_fraction])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(format_table(
            ["error model", "max response [ms]", "message loss %"], rows,
            title="Ablation -- error models at 25 % jitter, strict deadlines"))

    losses = [row[2] for row in rows]
    responses = [row[1] for row in rows]
    # Harsher error models can only make things worse, and the burst model of
    # the paper's worst case dominates the sporadic one at equal rate.
    assert losses == sorted(losses)
    assert responses == sorted(responses)
    assert losses[-1] > losses[0]

"""Figure 1: simple load-analysis example.

Paper: four ECUs inject 20/50/100/10 kbit/s, accumulating 180 kbit/s on a
500 kbit/s CAN bus -- a 36 % load.  The benchmark reproduces the arithmetic
from raw rates and from a concrete K-Matrix realisation, and times the load
analysis on the full case-study matrix.
"""

from __future__ import annotations

from repro.analysis.load import abstract_load_from_rates, bus_load
from repro.reporting.tables import format_table
from repro.workloads.figure1 import (
    FIGURE1_BANDWIDTH_BPS,
    figure1_network,
    figure1_traffic_rates,
)


def test_fig1_load_analysis(benchmark, case_study, capsys):
    kmatrix, bus, _controllers = case_study

    report = benchmark(bus_load, kmatrix, bus, include_stuffing=False)

    abstract = abstract_load_from_rates(figure1_traffic_rates(),
                                        FIGURE1_BANDWIDTH_BPS)
    concrete_kmatrix, concrete_bus = figure1_network()
    concrete = bus_load(concrete_kmatrix, concrete_bus)

    rows = [
        ["Figure-1 rates (paper)", 180.0, 36.0],
        ["Figure-1 rates (reproduced)",
         abstract.total_bits_per_second / 1000.0,
         abstract.utilization_percent],
        ["Figure-1 K-Matrix realisation",
         concrete.total_bits_per_second / 1000.0,
         concrete.utilization_percent],
        ["Case-study power-train matrix",
         report.total_bits_per_second / 1000.0,
         report.utilization_percent],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["configuration", "traffic [kbit/s]", "load [% bandwidth]"],
            rows, title="Figure 1 -- simple load analysis"))

    assert abstract.utilization_percent == 36.0
    assert abs(concrete.utilization_percent - 36.0) < 1.5

"""Ablations: CAN controller types and optimizer baselines.

* Section 3.2 names the controller type (basicCAN / fullCAN) as one of the
  dynamic influences on message order: the first benchmark quantifies the
  extra blocking of basicCAN and FIFO-queued controllers.
* Section 4.3 uses a genetic optimizer: the second benchmark compares it with
  the deterministic baselines (original, rate-monotonic, deadline-monotonic,
  Audsley) on the paper's objective (loss across the what-if scenarios).
"""

from __future__ import annotations

from repro.analysis.schedulability import analyze_schedulability
from repro.can.controller import CanControllerType, default_controllers
from repro.experiments import WORST_CASE
from repro.optimize.assignment import (
    audsley_assignment,
    deadline_monotonic_assignment,
    rate_monotonic_assignment,
)
from repro.optimize.objectives import AnalysisScenario, evaluate_configuration, paper_scenarios
from repro.reporting.tables import format_table


def test_ablation_controller_types(benchmark, case_study, capsys):
    kmatrix, bus, _controllers = case_study
    ecus = kmatrix.senders()

    def sweep():
        rows = []
        for controller_type in (CanControllerType.FULL, CanControllerType.BASIC,
                                CanControllerType.QUEUED_FIFO):
            controllers = default_controllers(ecus, controller_type)
            report = analyze_schedulability(
                kmatrix, bus, assumed_jitter_fraction=0.25,
                deadline_policy="min-rearrival",
                error_model=WORST_CASE.error_model, controllers=controllers)
            worst = max(v.worst_case_response for v in report.verdicts)
            rows.append([controller_type.value, worst, report.loss_fraction])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["controller type (all ECUs)", "max response [ms]",
             "message loss %"],
            rows, title="Ablation -- CAN controller type"))

    by_type = {row[0]: (row[1], row[2]) for row in rows}
    assert by_type["basicCAN"][0] >= by_type["fullCAN"][0]
    assert by_type["queuedFIFO"][1] >= by_type["fullCAN"][1]


def test_ablation_optimizer_baselines(benchmark, case_study,
                                      optimized_case_study, capsys):
    kmatrix, bus, controllers = case_study
    scenarios = paper_scenarios(bus, controllers)
    worst_scenario = AnalysisScenario(
        name="wc25", bus=bus, error_model=WORST_CASE.error_model,
        assumed_jitter_fraction=0.25, deadline_policy="min-rearrival",
        controllers=controllers)

    def evaluate_baselines():
        audsley_matrix, _ = audsley_assignment(kmatrix, worst_scenario)
        candidates = {
            "original (legacy-grown)": kmatrix,
            "rate-monotonic": rate_monotonic_assignment(kmatrix),
            "deadline-monotonic": deadline_monotonic_assignment(kmatrix),
            "Audsley OPA": audsley_matrix,
            "SPEA2 genetic optimizer": optimized_case_study.best_kmatrix,
        }
        rows = []
        for label, candidate in candidates.items():
            evaluation = evaluate_configuration(candidate, scenarios)
            rows.append([label, evaluation.lost_messages,
                         evaluation.sensitivity_penalty,
                         -evaluation.negative_robustness])
        return rows

    rows = benchmark.pedantic(evaluate_baselines, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["priority assignment", "lost msgs (all scenarios)",
             "tight msgs", "robustness score"],
            rows, title="Ablation -- optimizer vs. deterministic baselines"))

    by_label = {row[0]: row[1] for row in rows}
    assert by_label["SPEA2 genetic optimizer"] == 0
    assert by_label["SPEA2 genetic optimizer"] <= \
        by_label["original (legacy-grown)"]
    assert by_label["SPEA2 genetic optimizer"] <= by_label["rate-monotonic"]

#!/usr/bin/env python3
"""Compositional analysis of a two-bus system with a gateway and ECU models.

Shows the full SymTA/S-style loop (Section 5.2): detailed ECU task models
produce message send jitters, the bus analyses consume them, the gateway
propagates arrival timing onto the second bus, and the global fixed point
yields end-to-end latencies along a sensor-to-actuator path -- plus a
comparison of the same message set on a FlexRay static segment, and a
cached what-if session per bus: the same scenario from the catalog swept
over every segment of the system (and over a larger generated multi-bus
chain) through the deterministic batch runner.

Run with:  python examples/multibus_gateway_system.py
"""

from __future__ import annotations

from repro.can.bus import CanBus
from repro.can.kmatrix import KMatrix
from repro.can.message import CanMessage
from repro.core.engine import CompositionalAnalysis
from repro.core.paths import EndToEndPath, path_latency
from repro.core.system import BusSegment, SystemModel
from repro.ecu.task import EcuModel, OsekOverheads, Task, TaskKind
from repro.errors.models import SporadicErrorModel
from repro.events.model import PeriodicEventModel
from repro.flexray.analysis import compare_with_can
from repro.gateway.model import ForwardingPolicy, GatewayModel, GatewayRoute
from repro.reporting.tables import format_table
from repro.service import (
    AnalysisSession,
    BatchRunner,
    JitterDelta,
    jitter_sweep_scenario,
    system_jobs,
)
from repro.workloads.multibus import multibus_system


def build_system() -> SystemModel:
    chassis = KMatrix(messages=[
        CanMessage(name="WheelSpeeds", can_id=0x90, dlc=8, period=10.0,
                   sender="BrakeECU", receivers=("Gateway",)),
        CanMessage(name="YawRate", can_id=0xA0, dlc=6, period=10.0,
                   sender="BrakeECU", receivers=("Gateway",)),
        CanMessage(name="SteeringAngle", can_id=0xB0, dlc=4, period=20.0,
                   sender="SteeringECU", receivers=("Gateway", "BrakeECU")),
    ])
    powertrain = KMatrix(messages=[
        CanMessage(name="PT_WheelSpeeds", can_id=0x98, dlc=8, period=10.0,
                   sender="Gateway", receivers=("EngineECU",)),
        CanMessage(name="EngineTorque", can_id=0x88, dlc=8, period=10.0,
                   sender="EngineECU", receivers=("Gateway",)),
        CanMessage(name="GearState", can_id=0x120, dlc=3, period=50.0,
                   sender="TransmissionECU", receivers=("EngineECU",)),
    ])
    system = SystemModel(name="chassis+powertrain")
    system.add_bus(BusSegment(
        bus=CanBus(name="Chassis-CAN", bit_rate_bps=500_000.0),
        kmatrix=chassis,
        error_model=SporadicErrorModel(min_interarrival=200.0),
        assumed_jitter_fraction=0.1))
    system.add_bus(BusSegment(
        bus=CanBus(name="Powertrain-CAN", bit_rate_bps=500_000.0),
        kmatrix=powertrain,
        error_model=SporadicErrorModel(min_interarrival=200.0),
        assumed_jitter_fraction=0.1))
    system.add_gateway(GatewayModel(
        name="Gateway", policy=ForwardingPolicy.PERIODIC_POLLING,
        polling_period=2.5, copy_time=0.05,
        routes=[GatewayRoute(source_message="WheelSpeeds",
                             destination_message="PT_WheelSpeeds",
                             source_bus="Chassis-CAN",
                             destination_bus="Powertrain-CAN")]))
    system.add_ecu(EcuModel(
        name="EngineECU", overheads=OsekOverheads(),
        tasks=[
            Task(name="InjectionISR", priority=1, wcet=0.3, bcet=0.1,
                 kind=TaskKind.INTERRUPT,
                 activation=PeriodicEventModel(period=2.0)),
            Task(name="TorqueControl", priority=4, wcet=1.8, bcet=0.9,
                 activation=PeriodicEventModel(period=10.0),
                 sends_messages=("EngineTorque",)),
            Task(name="Housekeeping", priority=12, wcet=3.0, bcet=1.0,
                 kind=TaskKind.COOPERATIVE,
                 activation=PeriodicEventModel(period=100.0)),
        ]))
    return system


def main() -> None:
    system = build_system()
    print(system.describe())

    result = CompositionalAnalysis(system).run()
    print()
    print(result.describe())

    rows = []
    for name, message_result in sorted(result.message_results.items()):
        rows.append([name, message_result.best_case, message_result.worst_case,
                     result.send_jitter(name), result.arrival_jitter(name)])
    print()
    print(format_table(
        ["message", "best [ms]", "worst [ms]", "send J [ms]", "arrival J [ms]"],
        rows, title="Fixed-point message timing"))

    path = EndToEndPath(name="wheel-speed-to-engine", segments=(
        ("message", "WheelSpeeds"),
        ("gateway", "Gateway:PT_WheelSpeeds"),
        ("message", "PT_WheelSpeeds"),
        ("task", "EngineECU.TorqueControl"),
        ("message", "EngineTorque"),
    ))
    latency = path_latency(path, system, result)
    print()
    print(latency.describe())
    for segment, worst in latency.per_segment:
        print(f"    {segment:<38} {worst:8.3f} ms")

    # Time-triggered alternative for the power-train messages.
    powertrain = system.buses["Powertrain-CAN"].kmatrix
    rows = compare_with_can(powertrain,
                            system.buses["Powertrain-CAN"].bus,
                            assumed_jitter_fraction=0.1)
    print()
    print(format_table(["message", "CAN worst [ms]", "FlexRay worst [ms]"],
                       rows,
                       title="Event-triggered vs. time-triggered comparison"))

    # ---------------------------------------------------------------- #
    # Cached what-if queries per bus: one session per segment, the same
    # catalog scenario batched deterministically over all of them.
    # ---------------------------------------------------------------- #
    session = AnalysisSession.from_system(system, "Powertrain-CAN")
    session.analyze()
    whatif = session.query(
        (JitterDelta(message_name="PT_WheelSpeeds", jitter=1.5),),
        label="gateway forwarding jitter grows to 1.5 ms")
    print()
    print("What-if on the powertrain segment:")
    print("  " + whatif.describe())
    print("  " + session.describe())

    sweep = jitter_sweep_scenario(fractions=(0.0, 0.1, 0.2, 0.3))
    results = BatchRunner().run(system_jobs(system, sweep))
    for run in results:
        print()
        print(run.to_table())

    # The same batch over a generated many-bus chain (the ROADMAP's
    # multi-bus scale-out family).
    chain = multibus_system(n_buses=4, messages_per_bus=12, seed=3)
    results = BatchRunner().run(system_jobs(chain, sweep))
    print()
    print(f"{chain.name}: swept {len(results)} buses, "
          f"{sum(len(r.queries) for r in results)} what-if queries, "
          "loss at 30 % jitter per bus: "
          + ", ".join(f"{r.session}={r.queries[-1].report.loss_fraction:.0%}"
                      for r in results))


if __name__ == "__main__":
    main()

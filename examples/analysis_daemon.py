#!/usr/bin/env python3
"""The analysis daemon as multi-user infrastructure.

What a deployment of the daemon looks like, end to end:

1. build an :class:`AnalysisDaemon` serving the power-train case study and
   a 4-bus gateway-chain system (sharded into one session per segment);
2. serve it over TCP (ephemeral port) and connect a
   :class:`TcpClient` -- every request below crosses a real socket as
   line-delimited JSON;
3. health-check it, run the paper's jitter-sweep scenario from the
   catalog, issue an ad-hoc priority-swap what-if, and fan a batch of
   error-rate queries across the daemon's worker pool;
4. request the compositional fixed point of the multibus system twice --
   the second run is served from the warm per-segment session caches
   (watch the ``hits`` column);
5. run a traced query (``trace=True``) and print the six-stage span
   tree the daemon returns inline, then pull the slowest retained trace
   back out of the daemon's trace ring via the ``traces`` op;
6. print the daemon's metrics snapshot (the ``metrics`` op -- cache
   hit/miss traffic, warm/cold plan splits, solver iteration
   histograms) and its session-statistics table, then shut it down from
   the client side;
7. demonstrate persistence: boot a daemon onto a ``ResultStore``
   directory, register a *named* workload (the daemon expands
   ``("multibus_chain", {...})`` server-side), analyze it, then
   hard-kill the daemon through a :class:`ServerHarness` and restart
   it on the same port -- the reborn daemon answers the same system
   analysis from the store (watch ``store_lookups_total{result=hit}``)
   bit-identically, without re-running the fixed point.

Run with:  python examples/analysis_daemon.py
"""

from __future__ import annotations

import tempfile

from repro import (
    AnalysisDaemon,
    BusConfiguration,
    ErrorModelDelta,
    JitterDelta,
    PriorityDelta,
    ResultStore,
    RetryPolicy,
    SporadicErrorModel,
    TcpClient,
    start_server,
)
from repro.reporting import format_trace
from repro.server.harness import ServerHarness
from repro.workloads.multibus import multibus_system
from repro.workloads.powertrain import (
    PowertrainConfig,
    powertrain_bus,
    powertrain_controllers,
    powertrain_kmatrix,
)


def build_daemon() -> AnalysisDaemon:
    # max_inflight/max_pending bound concurrent work (beyond them clients
    # get typed 'overloaded' errors with a retry hint and back off);
    # grace is the drain window of a shutdown.
    daemon = AnalysisDaemon(name="example-daemon", max_inflight=8,
                            max_pending=64, grace=5.0)
    config = PowertrainConfig(n_messages=50)
    daemon.add_config("powertrain", BusConfiguration(
        kmatrix=powertrain_kmatrix(config),
        bus=powertrain_bus(config),
        assumed_jitter_fraction=0.15,
        controllers=powertrain_controllers(config)))
    shards = daemon.add_system(
        "multibus", multibus_system(n_buses=4, messages_per_bus=10))
    print("registered system 'multibus' with shards: "
          + ", ".join(shards.values()))
    return daemon


def main() -> None:
    daemon = build_daemon()
    server = start_server(daemon, port=0)
    host, port = server.address
    print(f"daemon serving on {host}:{port}\n")

    # The client retries idempotent requests through overload and dropped
    # connections with exponential backoff + jitter, and verifies every
    # response echoes its request id.
    with TcpClient(host, port, retry=RetryPolicy(attempts=4)) as client:
        health = client.health()
        print(f"health: {health['status']}, protocol v{health['protocol']}, "
              f"{health['sessions']} sessions, "
              f"{len(health['scenarios'])} catalog scenarios; "
              f"queue {health['queue']['pending']} pending / "
              f"{health['queue']['workers']} workers")

        # A deadline bounds the daemon-side analysis: a divergent or
        # oversized query answers a typed 'timeout' error instead of
        # spinning to the iteration cap.  This one is generous, so the
        # result is bit-identical to the unbounded query.
        bounded = client.query("powertrain", deadline_ms=60_000,
                               label="bounded")
        print(f"deadline-bounded query answered "
              f"{len(bounded['results'])} messages")

        # A named catalog scenario, exactly as a dashboard would run it.
        sweep = client.run_scenario("powertrain", "paper-jitter-sweep")
        print()
        print(sweep["table"])

        # An ad-hoc what-if: trade the identifiers of two messages.
        kmatrix_names = sorted(sweep["queries"][0]["results"])
        first, second = kmatrix_names[0], kmatrix_names[1]
        swap = client.query(
            "powertrain", (PriorityDelta(swap=(first, second)),),
            label=f"swap {first}<->{second}")
        print(f"\n{swap['label']}: "
              f"{swap['stats']['reused']} reused, "
              f"{swap['stats']['warm_started']} warm, "
              f"{swap['stats']['cold']} cold "
              f"(fingerprint {swap['fingerprint']})")

        # A batch fanned across the worker pool, answered in order.
        batch = client.batch("powertrain", [
            {"deltas": (ErrorModelDelta(SporadicErrorModel(
                min_interarrival=interarrival)),
                JitterDelta(fraction=0.25)),
             "label": f"errors>={interarrival:g}ms"}
            for interarrival in (500.0, 100.0, 20.0)])
        print("\nbatch verdicts:")
        for entry in batch["results"]:
            report = entry["report"]
            print(f"  {entry['label']}: loss {report['loss_fraction']:.1%}, "
                  f"utilization {report['utilization']:.1%}")

        # System-level fixed point on the sharded sessions -- twice.
        for attempt in ("cold", "warm"):
            outcome = client.analyze_system("multibus")
            print(f"\nmultibus fixed point ({attempt}): "
                  f"converged={outcome['converged']} "
                  f"after {outcome['iterations']} iterations, "
                  f"deadlines met: {outcome['all_deadlines_met']}")

        # A traced query: the response carries the span tree inline --
        # decode, admission, queue_wait, session_plan, solve, encode --
        # and the daemon retains the slowest traces in a ring for later
        # inspection (the `traces` op, `--trace-ring` sizes it).
        traced = client.query(
            "powertrain", (JitterDelta(fraction=0.3),),
            label="traced", trace=True)
        print()
        print(format_trace(traced["trace"], title="inline trace"))

        slowest = client.traces(limit=1)["traces"]
        if slowest:
            print()
            print(format_trace(slowest[0], title="slowest retained trace"))

        # The metrics snapshot: one registry wired through the daemon,
        # session pool, sessions and job queue.  `format="prometheus"`
        # would add the text exposition format for a scrape endpoint.
        metrics = client.metrics()
        print()
        print(metrics["table"])

        stats = client.stats()
        print()
        print(stats["table"])
        print(f"\nrequests served: {stats['requests_served']} "
              f"({stats['errors']} errors); "
              f"queue: {stats['queue']}")

        client.shutdown_daemon()
    server.stop()
    print("\ndaemon stopped.")

    warm_restart_demo()


def warm_restart_demo() -> None:
    """Kill a store-backed daemon mid-flight and warm-boot its successor."""
    print("\n--- persistence: warm restart from the result store ---")
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store_dir:

        def factory() -> AnalysisDaemon:
            # Each generation opens its own handle on the shared store
            # directory -- exactly what `--store-dir` does for the CLI.
            daemon = AnalysisDaemon(name="persistent-daemon",
                                    store=ResultStore(store_dir))
            return daemon

        with ServerHarness(factory) as harness:
            host, port = harness.address
            with TcpClient(host, port) as client:
                # A *named* workload: the client ships generator name +
                # parameters; the daemon expands it server-side and
                # dedupes by fingerprint, so every client registering
                # these parameters shares one session and store entries.
                registered = client.register_workload(
                    "fleet", "multibus_chain",
                    {"n_buses": 4, "messages_per_bus": 10, "seed": 3})
                print("registered workload 'fleet' -> shards: "
                      + ", ".join(registered["shards"]))
                first = client.analyze_system("fleet")
                print(f"generation 1 solved the fixed point: "
                      f"{first['iterations']} iterations, "
                      f"{len(first['messages'])} messages")

            harness.restart()  # hard kill, no drain -- then reboot
            print("daemon killed and restarted on the same port")

            with TcpClient(host, port) as client:
                client.register_workload(
                    "fleet", "multibus_chain",
                    {"n_buses": 4, "messages_per_bus": 10, "seed": 3})
                second = client.analyze_system("fleet")
                stats = client.store_stats()["stats"]
                print(f"generation 2 answered from the store: "
                      f"bit-identical={second['messages'] == first['messages']}"
                      f", store hits {stats['hits']}, "
                      f"{stats['entries']} entries on disk")
                client.shutdown_daemon()
    print("persistent daemon stopped.")


if __name__ == "__main__":
    main()

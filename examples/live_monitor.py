#!/usr/bin/env python3
"""Live conformance monitoring against the analytic bounds.

The analysis promises worst-case response times; the monitor checks that a
*running* bus keeps that promise.  This example closes the loop end to end:

1. build a 5-message system, register it with an :class:`AnalysisDaemon`,
   and serve it over TCP;
2. record a trace with the discrete-event simulator and replay it into the
   daemon in chunks through the ``monitor_ingest`` op -- a clean replay
   conforms, so nothing is flagged;
3. inject a jitter burst into the recorded trace (five ``Slow`` instances
   queued up to 120 ms early) and replay again: the monitor refits
   ``Slow``'s event model from the observed arrivals, re-derives its bound
   through the warm session, and flags exactly the instance that lands
   past its deadline;
4. watch the alert rules fire (``violations > 0`` globally, a tight-slack
   rule per message), pull the windowed metrics history, and print the
   monitor status and alert tables.

Run with:  python examples/live_monitor.py
"""

from __future__ import annotations

from repro import (
    AlertRule,
    AnalysisDaemon,
    BusConfiguration,
    CanBus,
    CanBusSimulator,
    CanMessage,
    KMatrix,
    SimulationConfig,
    TcpClient,
    frames_from_trace,
    inject_jitter_burst,
    start_server,
)
from repro.monitor import chunked
from repro.reporting import format_alerts, format_monitor_status


def build_system() -> tuple[KMatrix, CanBus]:
    kmatrix = KMatrix([
        CanMessage("FastA", 0x100, dlc=8, period=10.0, sender="ECU_A"),
        CanMessage("FastB", 0x110, dlc=8, period=10.0, sender="ECU_B"),
        CanMessage("Medium", 0x200, dlc=4, period=20.0, sender="ECU_A",
                   jitter=2.0),
        CanMessage("Slow", 0x300, dlc=8, period=100.0, sender="ECU_B"),
        CanMessage("Background", 0x400, dlc=2, period=500.0,
                   sender="ECU_A"),
    ])
    return kmatrix, CanBus("DemoBus", 500_000.0)


def replay(client: TcpClient, frames, chunk_size: int = 256) -> dict:
    """Stream a recorded trace into the daemon, chunk by chunk.

    A live deployment would do exactly this from the CAN interface,
    shipping each batch as it completes; a post-mortem replays a recorded
    file at full speed.  Either way the daemon sees the same
    ``monitor_ingest`` requests.
    """
    totals = {"frames": 0, "violations": [], "alerts": []}
    for chunk in chunked(frames, chunk_size):
        report = client.monitor_ingest("bus", chunk)
        totals["frames"] += report["frames"]
        totals["violations"].extend(report["violations"])
        totals["alerts"].extend(report["alerts"])
    tail = client.monitor_ingest("bus", [], flush=True)
    totals["violations"].extend(tail["violations"])
    totals["alerts"].extend(tail["alerts"])
    return totals


def main() -> None:
    kmatrix, bus = build_system()
    daemon = AnalysisDaemon(name="monitor-demo")
    daemon.add_config("bus", BusConfiguration(
        kmatrix=kmatrix, bus=bus, assumed_jitter_fraction=0.0))
    server = start_server(daemon, port=0)
    host, port = server.address
    print(f"daemon serving on {host}:{port}")

    # Record 2 seconds of bus traffic with the discrete-event simulator.
    simulator = CanBusSimulator(
        kmatrix, bus, config=SimulationConfig(duration=2000.0, seed=3))
    frames = frames_from_trace(simulator.run())
    print(f"recorded {len(frames)} frames over 2000 ms\n")

    rules = [
        AlertRule.parse("any-violation", "violations > 0"),
        AlertRule.parse("tight-slack",
                        "observed_slack_ms < 0.1*deadline for 2 windows"),
    ]

    with TcpClient(host, port) as client:
        started = client.monitor_start("bus", rules=rules, window_ms=100.0)
        print(f"monitoring {len(started['messages'])} messages, "
              f"window {started['window_ms']:g} ms, rules:")
        for rule in started["rules"]:
            print(f"  {rule}")

        # --- clean replay: the observed bus conforms to the analysis ---
        clean = replay(client, frames)
        print(f"\nclean replay: {clean['frames']} frames, "
              f"{len(clean['violations'])} violations, "
              f"{len(clean['alerts'])} alerts")

        # --- replay with an injected jitter burst on 'Slow' ---
        burst = inject_jitter_burst(frames, "Slow", start=500.0, count=5,
                                    shift=120.0)
        client.monitor_start("bus", rules=rules, window_ms=100.0)
        flagged = replay(client, burst)
        print(f"\nburst replay: {flagged['frames']} frames, "
              f"{len(flagged['violations'])} violation(s)")
        for violation in flagged["violations"]:
            print(f"  {violation['message']}: observed "
                  f"{violation['observed']:.3f} ms vs deadline "
                  f"{violation['deadline']:g} ms (re-derived bound "
                  f"{violation['bound']:.3f} ms, window "
                  f"{violation['window']})")

        # The status table: per-message bounds (re-derived where the
        # empirical envelope escaped the registered model), observed
        # maxima, and the refit record.
        status = client.monitor_status("bus")
        print()
        print(format_monitor_status(status, title="after burst replay"))

        print()
        print(format_alerts(client.monitor_alerts("bus"),
                            title="fired alerts"))

        # The windowed history behind the alerts, via the `metrics` op.
        history = client.metrics(history=True, history_last=3)["history"]
        series = history["bus"]['observed_max_ms{message="Slow"}']
        print("\nobserved_max_ms{message=\"Slow\"}, last 3 windows:")
        for window, value in series:
            print(f"  window {window}: {value:.3f} ms")

        client.monitor_stop("bus")
        client.shutdown_daemon()
    server.stop()
    print("\ndaemon stopped.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: load analysis vs. response-time analysis on the case study.

Reproduces the narrative of Sections 3 and 4 of the paper in a few lines:

1. build the synthetic power-train network (the stand-in for the proprietary
   K-Matrix analysed in the paper);
2. run the popular-but-insufficient bus-load analysis (Section 3.1);
3. run the real schedulability analysis, first with zero jitters
   (experiment 1), then with realistic assumptions and bus errors;
4. print which messages become critical.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import analyze_schedulability, bus_load, powertrain_system
from repro.experiments import BEST_CASE, WORST_CASE
from repro.reporting.tables import format_table


def main() -> None:
    kmatrix, bus, controllers = powertrain_system()
    print(f"Case-study network: {len(kmatrix)} messages, "
          f"{len(kmatrix.ecu_names())} ECUs on {bus.describe()}")

    # ---------------------------------------------------------------- #
    # Section 3.1: the load model alone.
    # ---------------------------------------------------------------- #
    load = bus_load(kmatrix, bus, include_stuffing=False)
    print()
    print(load.describe())
    print("The load model says nothing about deadlines -- so we analyse.")

    # ---------------------------------------------------------------- #
    # Section 4, experiment 1: zero jitters, no errors.
    # ---------------------------------------------------------------- #
    report = analyze_schedulability(kmatrix, bus, controllers=controllers)
    print()
    print(f"Experiment 1 (zero jitter, no errors): "
          f"all deadlines met = {report.all_deadlines_met}")

    # ---------------------------------------------------------------- #
    # Realistic jitters and the worst-case interpretation.
    # ---------------------------------------------------------------- #
    rows = []
    for jitter_fraction in (0.0, 0.15, 0.25, 0.40):
        best = BEST_CASE.analyze(kmatrix, bus, jitter_fraction, controllers)
        worst = WORST_CASE.analyze(kmatrix, bus, jitter_fraction, controllers)
        rows.append([f"{jitter_fraction:.0%}", best.loss_fraction,
                     worst.loss_fraction])
    print()
    print(format_table(
        ["assumed jitter", "best-case loss %", "worst-case loss %"], rows,
        title="Message loss under different assumptions (what-if analysis)"))

    # ---------------------------------------------------------------- #
    # Which messages become critical first?
    # ---------------------------------------------------------------- #
    worst = WORST_CASE.analyze(kmatrix, bus, 0.25, controllers)
    critical = sorted(worst.verdicts, key=lambda v: v.slack)[:5]
    print()
    print(format_table(
        ["message", "response [ms]", "deadline [ms]", "slack [ms]"],
        [[v.name, v.worst_case_response, v.deadline, v.slack]
         for v in critical],
        title="Tightest messages at 25 % jitter (worst-case interpretation)"))
    print()
    print("These are the messages whose senders need jitter requirements "
          "(see examples/supply_chain_contracts.py).")


if __name__ == "__main__":
    main()

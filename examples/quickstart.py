#!/usr/bin/env python3
"""Quickstart: load analysis, response-time analysis and what-if queries.

Reproduces the narrative of Sections 3 and 4 of the paper in a few lines:

1. build the synthetic power-train network (the stand-in for the proprietary
   K-Matrix analysed in the paper);
2. run the popular-but-insufficient bus-load analysis (Section 3.1);
3. run the real schedulability analysis, first with zero jitters
   (experiment 1), then with realistic assumptions and bus errors;
4. explore the design interactively through a cached what-if session: the
   jitter/error sweeps, a single sender degrading, a priority swap -- every
   query a typed delta against the same session, re-analysing only what the
   delta touched;
5. print which messages become critical.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnalysisSession,
    ErrorModelDelta,
    JitterDelta,
    PriorityDelta,
    bus_load,
    powertrain_system,
)
from repro.experiments import WORST_CASE, WORST_CASE_ERRORS
from repro.reporting.tables import format_table
from repro.service.deltas import BusDelta, DeadlinePolicyDelta

#: The worst-case interpretation of the paper as a reusable delta list
#: (same parameters as repro.experiments.WORST_CASE).
WORST_CASE_DELTAS = (
    BusDelta(bit_stuffing=True),
    ErrorModelDelta(WORST_CASE_ERRORS),
    DeadlinePolicyDelta("min-rearrival"),
)
BEST_CASE_DELTAS = (BusDelta(bit_stuffing=False), DeadlinePolicyDelta("period"))


def main() -> None:
    kmatrix, bus, controllers = powertrain_system()
    print(f"Case-study network: {len(kmatrix)} messages, "
          f"{len(kmatrix.ecu_names())} ECUs on {bus.describe()}")

    # ---------------------------------------------------------------- #
    # Section 3.1: the load model alone.
    # ---------------------------------------------------------------- #
    load = bus_load(kmatrix, bus, include_stuffing=False)
    print()
    print(load.describe())
    print("The load model says nothing about deadlines -- so we analyse.")

    # ---------------------------------------------------------------- #
    # Section 4, experiment 1: zero jitters, no errors -- the first query
    # of a cached what-if session over the shared K-Matrix.
    # ---------------------------------------------------------------- #
    session = AnalysisSession(kmatrix, bus, controllers=controllers,
                              name="powertrain")
    report = session.analyze().report
    print()
    print(f"Experiment 1 (zero jitter, no errors): "
          f"all deadlines met = {report.all_deadlines_met}")

    # ---------------------------------------------------------------- #
    # Interactive what-if analysis through the same session: many
    # hypotheses, each expressed as a typed delta, re-analysing only what
    # the delta touched.
    # ---------------------------------------------------------------- #
    rows = []
    for jitter_fraction in (0.0, 0.15, 0.25, 0.40):
        best = session.query(
            BEST_CASE_DELTAS + (JitterDelta(fraction=jitter_fraction),))
        worst = session.query(
            WORST_CASE_DELTAS + (JitterDelta(fraction=jitter_fraction),))
        rows.append([f"{jitter_fraction:.0%}", best.report.loss_fraction,
                     worst.report.loss_fraction])
    print()
    print(format_table(
        ["assumed jitter", "best-case loss %", "worst-case loss %"], rows,
        title="Message loss under different assumptions (what-if analysis)"))

    # What if one specific sender degrades?  Only messages the delta
    # actually touches are re-analysed; the rest come from the cache.
    victim = max(kmatrix, key=lambda m: m.can_id)
    whatif = session.query(
        (JitterDelta(message_name=victim.name, fraction=0.5),),
        label=f"{victim.name} sender degrades")
    print()
    print(f"What-if: {whatif.describe()}")
    swap = session.query(
        (PriorityDelta(swap=(kmatrix.sorted_by_priority()[0].name,
                             kmatrix.sorted_by_priority()[1].name)),),
        label="swap two highest priorities")
    print(f"What-if: {swap.describe()}")
    print(session.describe())

    # ---------------------------------------------------------------- #
    # Which messages become critical first?
    # ---------------------------------------------------------------- #
    worst = WORST_CASE.analyze(kmatrix, bus, 0.25, controllers)
    critical = sorted(worst.verdicts, key=lambda v: v.slack)[:5]
    print()
    print(format_table(
        ["message", "response [ms]", "deadline [ms]", "slack [ms]"],
        [[v.name, v.worst_case_response, v.deadline, v.slack]
         for v in critical],
        title="Tightest messages at 25 % jitter (worst-case interpretation)"))
    print()
    print("These are the messages whose senders need jitter requirements "
          "(see examples/supply_chain_contracts.py).")


if __name__ == "__main__":
    main()

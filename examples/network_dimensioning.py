#!/usr/bin/env python3
"""Network dimensioning and priority optimization (Sections 4.1-4.3).

The OEM's workflow on the power-train bus:

1. sweep the assumed send jitter and watch the response times (Figure 4) --
   classify messages as robust or sensitive;
2. compute the message-loss curves of the best- and worst-case
   interpretations (Figure 5, dotted lines);
3. run the SPEA2-style priority optimizer and show that the optimized CAN-ID
   assignment no longer loses messages at 25 % jitter, even with burst errors
   and bit stuffing (Figure 5, solid lines);
4. cross-check one operating point against the discrete-event simulator.

Run with:  python examples/network_dimensioning.py
"""

from __future__ import annotations

from repro import powertrain_system
from repro.analysis.response_time import CanBusAnalysis
from repro.experiments import BEST_CASE, WORST_CASE
from repro.optimize import GeneticOptimizerConfig, optimize_priorities, paper_scenarios
from repro.reporting.tables import format_loss_curves, format_sensitivity_table
from repro.sensitivity.jitter import classify_all, jitter_sensitivity_all
from repro.sim.simulator import CanBusSimulator, SimulationConfig

SWEEP = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def main() -> None:
    kmatrix, bus, controllers = powertrain_system()

    # ---------------------------------------------------------------- #
    # Figure 4: jitter sensitivity of selected messages.
    # ---------------------------------------------------------------- #
    curves = jitter_sensitivity_all(kmatrix, bus, jitter_fractions=SWEEP,
                                    controllers=controllers)
    groups = classify_all(curves)
    print("Sensitivity classes (Figure 4):")
    for sensitivity_class, names in groups.items():
        print(f"  {sensitivity_class.value:<18}: {len(names)} messages")
    selected = {}
    for sensitivity_class, names in groups.items():
        if names:
            name = names[0]
            selected[name] = curves[name].as_rows()
    print()
    print(format_sensitivity_table(
        selected, title="Response time vs. jitter for selected messages"))

    # ---------------------------------------------------------------- #
    # Figure 5: message loss before optimization.
    # ---------------------------------------------------------------- #
    original_best = BEST_CASE.loss_curve(kmatrix, bus, SWEEP, controllers)
    original_worst = WORST_CASE.loss_curve(kmatrix, bus, SWEEP, controllers)

    # ---------------------------------------------------------------- #
    # Section 4.3: optimize the CAN identifiers.
    # ---------------------------------------------------------------- #
    print()
    print("Optimizing CAN identifiers (SPEA2-style GA seeded with Audsley)...")
    result = optimize_priorities(
        kmatrix, paper_scenarios(bus, controllers),
        GeneticOptimizerConfig(population_size=12, archive_size=6,
                               generations=4, seed=7))
    print("  " + result.describe())
    optimized = result.best_kmatrix
    optimized_best = BEST_CASE.loss_curve(optimized, bus, SWEEP, controllers)
    optimized_worst = WORST_CASE.loss_curve(optimized, bus, SWEEP, controllers)

    print()
    print(format_loss_curves({
        "non-opt. best case": original_best,
        "non-opt. worst case": original_worst,
        "optimized best case": optimized_best,
        "optimized worst case": optimized_worst,
    }, title="Figure 5: message loss due to jitter, before/after optimization"))

    # ---------------------------------------------------------------- #
    # Cross-validation: simulate the optimized bus at 25 % jitter.
    # ---------------------------------------------------------------- #
    analysis = CanBusAnalysis(optimized, bus, controllers=controllers,
                              assumed_jitter_fraction=0.25,
                              error_model=WORST_CASE.error_model).analyze_all()
    trace = CanBusSimulator(
        optimized, bus, controllers=controllers,
        error_model=WORST_CASE.error_model,
        config=SimulationConfig(duration=5000.0, seed=2,
                                jitter_fraction=0.25)).run()
    worst_gap = min(
        analysis[m.name].worst_case - trace.max_observed_response(m.name)
        for m in optimized)
    print()
    print(f"Simulation cross-check over {trace.duration:.0f} ms: "
          f"{len(trace.transmissions)} transmissions, "
          f"{len(trace.errors)} injected errors, "
          f"{len(trace.losses)} buffer overwrites.")
    print(f"Smallest analysis-minus-observation margin: {worst_gap:.3f} ms "
          f"(must be >= 0: the bound is never violated).")


if __name__ == "__main__":
    main()

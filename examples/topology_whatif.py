#!/usr/bin/env python
"""Topology what-if: a gateway-failover scenario end to end.

The system-level question this walks through is the paper's headline use
case: an OEM integrates a multi-bus network, a gateway is suspected to be
a single point of failure, and the architecture team wants to know --
*before* building anything -- what happens to end-to-end latencies when
its routes migrate to a (slower) backup gateway.

Part 1 answers it locally with a :class:`repro.whatif.SystemSession`:
typed topology deltas, incremental re-analysis, per-step path latencies.
Part 2 asks the *same* questions through the analysis daemon over TCP --
``register`` (which returns the shard-name map), ``system_query``,
``system_scenario`` and ``path_latency`` -- the way a design-exploration
dashboard would.

Run with::

    PYTHONPATH=src python examples/topology_whatif.py
"""

from repro.reporting.tables import format_path_latency_table
from repro.server import AnalysisDaemon, TcpClient, start_server
from repro.whatif import (
    AddGatewayRouteDelta,
    BusSpeedDelta,
    GatewayConfigDelta,
    RemoveGatewayRouteDelta,
    SystemSession,
    gateway_failover_scenario,
)
from repro.workloads.multibus import multibus_paths, multibus_system


def build_system():
    """A 4-bus gateway chain -- the integration view of Figure 3."""
    return multibus_system(n_buses=4, messages_per_bus=12, seed=42)


def local_walkthrough() -> None:
    print("=" * 72)
    print("Part 1: local SystemSession")
    print("=" * 72)

    system = build_system()
    session = SystemSession(system)
    paths = multibus_paths(system)

    baseline = session.analyze()
    print(f"\nbaseline: {baseline.describe()}")
    print(format_path_latency_table(
        session.path_latency(paths), title="baseline path latencies"))

    # One-off questions: typed deltas, each bit-identical to a
    # from-scratch engine run on the edited topology.
    degraded = session.query(
        GatewayConfigDelta("GW1", polling_period=10.0),
        label="GW1 polling x4")
    print(f"\n{degraded.describe()}")

    slow_bus = session.query(
        BusSpeedDelta("CAN-2", 250_000.0), label="CAN-2 at 250 kbit/s")
    print(slow_bus.describe())

    # Manual failover: move GW1's first route to a cold standby.
    route = system.gateways["GW1"].routes[0]
    failover = (
        RemoveGatewayRouteDelta("GW1", route.destination_message),
        AddGatewayRouteDelta("GW1-standby", route, polling_period=5.0),
    )
    print(format_path_latency_table(
        session.path_latency(paths[:2], failover),
        title="first route on the standby gateway"))

    # The registered scenario family runs the whole migration.
    scenario = gateway_failover_scenario(system, "GW1", paths=paths[:2])
    print("\n" + scenario.run(session).to_table())
    print(f"\n{session.describe()}")


def daemon_walkthrough() -> None:
    print("\n" + "=" * 72)
    print("Part 2: the same exploration through the daemon (TCP)")
    print("=" * 72)

    daemon = AnalysisDaemon(name="topology-daemon")
    server = start_server(daemon, port=0)
    host, port = server.address
    system = build_system()
    paths = multibus_paths(system)

    try:
        with TcpClient(host, port) as client:
            # Registration over the wire returns the shard map, so the
            # client can address per-segment sessions without re-deriving
            # "<system>/<bus>" strings.
            registration = client.register_system("plant", system)
            print(f"\nregistered shards: {registration['shards']}")
            print(f"topology scenarios: {registration['scenarios']}")

            response = client.system_query(
                "plant",
                (GatewayConfigDelta("GW1", polling_period=10.0),),
                paths=paths[:2],
                shards=registration["shards"],
                label="GW1 degraded")
            print(f"\nsystem_query '{response['label']}': "
                  f"converged={response['converged']}, "
                  f"invalidated={response['stats']['invalidated']}")
            for entry in response["paths"]:
                print(f"  path {entry['path']}: "
                      f"worst {entry['worst_case']:.3f} ms")

            scenario = client.system_scenario("plant", "gateway-failover")
            print("\n" + scenario["table"])

            latencies = client.path_latency("plant", paths[:3])
            print("\n" + latencies["table"])
    finally:
        server.stop()


def main() -> None:
    local_walkthrough()
    daemon_walkthrough()


if __name__ == "__main__":
    main()

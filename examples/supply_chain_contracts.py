#!/usr/bin/env python3
"""Supply-chain duality: requirements vs. guarantees (Figure 6, Section 5).

Plays both roles of the paper's methodology:

* as the **OEM**: derive per-supplier send-jitter requirements from the bus
  analysis, and an arrival-timing data sheet for the supplier's control
  algorithms;
* as the **supplier**: analyse an (undisclosed) ECU task model, publish only
  the resulting send-jitter data sheet;
* then run the contract check in both directions and iterate once (the
  Section-5.2 refinement loop) after the supplier improves its
  implementation.

Run with:  python examples/supply_chain_contracts.py
"""

from __future__ import annotations

from repro.ecu.task import EcuModel, OsekOverheads, Task, TaskKind
from repro.events.model import PeriodicEventModel
from repro.supplychain.contracts import check_contract
from repro.supplychain.workflow import (
    derive_oem_arrival_datasheet,
    derive_oem_requirements,
    derive_supplier_datasheet,
    iterative_refinement,
)
from repro.workloads.powertrain import PowertrainConfig, powertrain_bus, powertrain_kmatrix


def build_supplier_ecu(name: str, kmatrix, slow: bool) -> EcuModel:
    """The supplier's internal task model -- never shown to the OEM."""
    sent = [message.name for message in kmatrix.sent_by(name)]
    tasks = []
    for index, message_name in enumerate(sent):
        message = kmatrix.get(message_name)
        wcet = 0.8 if slow else 0.25
        tasks.append(Task(
            name=f"Tx_{message_name}",
            priority=10 + index,
            wcet=wcet,
            bcet=0.1,
            kind=TaskKind.COOPERATIVE if slow else TaskKind.PREEMPTIVE,
            activation=PeriodicEventModel(period=message.period),
            sends_messages=(message_name,),
        ))
    tasks.append(Task(name="ControlISR", priority=1, wcet=0.15, bcet=0.05,
                      kind=TaskKind.INTERRUPT,
                      activation=PeriodicEventModel(period=5.0)))
    return EcuModel(name=name, overheads=OsekOverheads(), tasks=tasks)


def main() -> None:
    config = PowertrainConfig(n_messages=30, n_ecus=5, n_gateways=1, seed=12)
    kmatrix = powertrain_kmatrix(config)
    bus = powertrain_bus(config)
    supplier = "ECU2"

    # ---------------------------------------------------------------- #
    # OEM side: requirements for the supplier, guarantees for its inputs.
    # ---------------------------------------------------------------- #
    requirements = derive_oem_requirements(
        kmatrix, bus, supplier_ecus=[supplier],
        background_jitter_fraction=0.15)[supplier]
    print(f"OEM send-jitter requirements for {supplier}:")
    for clause in requirements.clauses:
        print(f"  {clause.message:<28} T={clause.period:>6.1f} ms   "
              f"J <= {clause.max_jitter:.2f} ms")

    arrival_guarantees = derive_oem_arrival_datasheet(
        kmatrix, bus, receiver_ecu=supplier, assumed_jitter_fraction=0.15)
    print(f"\nOEM arrival-timing guarantees towards {supplier} "
          f"({len(arrival_guarantees.clauses)} received messages), e.g.:")
    for clause in arrival_guarantees.clauses[:3]:
        print(f"  {clause.message:<28} latency <= {clause.max_latency:.2f} ms, "
              f"arrival jitter <= {clause.max_jitter:.2f} ms")

    # ---------------------------------------------------------------- #
    # Supplier side: first (slow) implementation, then an improved one.
    # ---------------------------------------------------------------- #
    slow_ecu = build_supplier_ecu(supplier, kmatrix, slow=True)
    fast_ecu = build_supplier_ecu(supplier, kmatrix, slow=False)
    slow_sheet = derive_supplier_datasheet(slow_ecu, kmatrix, bus)
    fast_sheet = derive_supplier_datasheet(fast_ecu, kmatrix, bus)

    print("\nSupplier data sheet (initial implementation):")
    for clause in slow_sheet.clauses:
        print(f"  {clause.message:<28} guaranteed J <= {clause.max_jitter:.2f} ms")

    first_check = check_contract(requirements, slow_sheet)
    print("\nContract check, round 1:")
    print("  " + first_check.describe().replace("\n", "\n  "))

    # ---------------------------------------------------------------- #
    # Section 5.2: iterate after the supplier reworks the critical tasks.
    # ---------------------------------------------------------------- #
    rounds = iterative_refinement(
        kmatrix, bus,
        requirement_rounds=[
            ("initial requirement set", {supplier: requirements}),
            ("after supplier rework", {supplier: requirements}),
        ],
        datasheet_rounds=[
            {supplier: slow_sheet},
            {supplier: fast_sheet},
        ])
    print("\nIterative refinement:")
    for integration_round in rounds:
        print("  " + integration_round.describe())
    final = rounds[-1]
    if final.all_satisfied:
        print("\nIntegration is safe: every guarantee refines its requirement, "
              "without either party disclosing internal design details.")
    else:
        print("\nStill violating -- a further refinement round is needed.")


if __name__ == "__main__":
    main()
